// Package strength implements §6's dependence-driven optimizations for
// loops that do not vectorize:
//
//   - Register promotion: a carried flow dependence of distance 1 between
//     a store and a load of the same array means the loaded value is
//     exactly the value stored one iteration earlier — the dependence
//     graph "pinpoints the memory locations that are most frequently
//     accessed". The value is kept in a register across iterations,
//     eliminating the load (the backsolve example's f_reg1).
//   - Strength reduction of addresses: affine addresses base + c·IV are
//     rewritten as bumped pointer temporaries, eliminating the integer
//     multiplications induction-variable substitution introduced (§6:
//     "classic vectorizing transformations ... deoptimize programs that do
//     not vectorize"; this undoes the damage). References with equal base
//     and stride share one pointer — common subexpression elimination and
//     loop-invariant removal fall out of the same rewrite.
//   - Loop-invariant hoisting for pure scalar subexpressions.
//
// All three run only on serial DO loops (vector statements carry their own
// addressing).
package strength

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ctype"
	"repro/internal/depend"
	"repro/internal/diag"
	"repro/internal/il"
	"repro/internal/schedule"
)

// Stats reports what the pass did.
type Stats struct {
	PromotedLoads    int `json:"promoted_loads"`    // loads replaced by registers
	ReducedRefs      int `json:"reduced_refs"`      // references rewritten to bumped pointers
	Pointers         int `json:"pointers"`          // pointer temporaries introduced
	HoistedExprs     int `json:"hoisted_exprs"`     // invariant expressions moved to the preheader
	LoopsTransformed int `json:"loops_transformed"` // loops §6 rewrote
	UnrolledLoops    int `json:"unrolled_loops"`    // loops replicated per their schedule
}

// Add folds another procedure's stats into s.
func (s *Stats) Add(o Stats) {
	s.PromotedLoads += o.PromotedLoads
	s.ReducedRefs += o.ReducedRefs
	s.Pointers += o.Pointers
	s.HoistedExprs += o.HoistedExprs
	s.LoopsTransformed += o.LoopsTransformed
	s.UnrolledLoops += o.UnrolledLoops
}

// Config controls the pass.
type Config struct {
	Depend depend.Options
	// NoPromotion disables register promotion (ablations).
	NoPromotion bool
	// NoReduction disables address strength reduction (ablation A1: leave
	// the multiplications ivsub introduced in place).
	NoReduction bool
	// Analysis, when non-nil, memoizes per-loop dependence graphs across
	// this pass and the vector/parallel consumers of the same loops.
	Analysis *analysis.Cache
	// Diags receives a strength-reduced remark for each loop §6 rewrote.
	// Nil drops the remarks.
	Diags *diag.Reporter
	// Schedules holds explicit per-loop plans; a loop whose schedule asks
	// for Unroll > 1 has its body replicated after the §6 rewrites. Nil
	// (or no entry) means no unrolling — the paper's behavior.
	Schedules *schedule.Set
}

// OptimizeLoops transforms every serial innermost DO loop of p.
func OptimizeLoops(p *il.Proc, cfg Config) Stats {
	var st Stats
	p.Body = walk(p, p.Body, cfg, &st)
	return st
}

func walk(p *il.Proc, list []il.Stmt, cfg Config, st *Stats) []il.Stmt {
	out := make([]il.Stmt, 0, len(list))
	for _, s := range list {
		switch n := s.(type) {
		case *il.If:
			n.Then = walk(p, n.Then, cfg, st)
			n.Else = walk(p, n.Else, cfg, st)
		case *il.While:
			n.Body = walk(p, n.Body, cfg, st)
		case *il.DoParallel:
			n.Body = walk(p, n.Body, cfg, st)
		case *il.DoLoop:
			n.Body = walk(p, n.Body, cfg, st)
			if eligible(n) {
				pre, post := transformLoop(p, n, cfg, st)
				out = append(out, pre...)
				out = append(out, s)
				out = append(out, post...)
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// eligible restricts the pass to innermost serial loops of straight-line
// assignments (no vector statements, no control flow) free of volatile
// references, which must be left exactly as written (§1).
func eligible(loop *il.DoLoop) bool {
	volatileRef := false
	for _, s := range loop.Body {
		as, ok := s.(*il.Assign)
		if !ok {
			return false
		}
		check := func(e il.Expr) {
			il.WalkExpr(e, func(x il.Expr) bool {
				if l, isLoad := x.(*il.Load); isLoad && l.Volatile {
					volatileRef = true
				}
				return true
			})
		}
		check(as.Dst)
		check(as.Src)
	}
	if volatileRef {
		return false
	}
	if _, ok := il.IsIntConst(loop.Step); !ok {
		return false
	}
	return true
}

// transformLoop applies promotion, reduction, hoisting, then any
// schedule-directed unrolling, returning preheader statements and the
// statements to place after the loop (the unroll remainder loop).
func transformLoop(p *il.Proc, loop *il.DoLoop, cfg Config, st *Stats) (pre, post []il.Stmt) {
	base := *st // snapshot so the remark reports this loop's counts only
	changed := false
	if !cfg.NoPromotion {
		if stmts, ok := promote(p, loop, cfg, st); ok {
			pre = append(pre, stmts...)
			changed = true
		}
	}
	if !cfg.NoReduction {
		if stmts, ok := reduce(p, loop, cfg, st); ok {
			pre = append(pre, stmts...)
			changed = true
		}
	}
	if stmts, ok := hoist(p, loop, st); ok {
		pre = append(pre, stmts...)
		changed = true
	}
	sched, _ := cfg.Schedules.Lookup(p.Name, loop.Pos)
	unrolled := 1
	if sched.Unroll > 1 {
		if rem, ok := unroll(p, loop, sched.Unroll, st); ok {
			post = rem
			unrolled = sched.Unroll
			changed = true
		}
	}
	if changed {
		st.LoopsTransformed++
		p.BumpGeneration()
		il.StampStmts(pre, loop.Pos)
		if cfg.Diags != nil {
			promoted := st.PromotedLoads - base.PromotedLoads
			reduced := st.ReducedRefs - base.ReducedRefs
			hoisted := st.HoistedExprs - base.HoistedExprs
			msg := fmt.Sprintf(
				"loop strength-reduced: %d load(s) promoted to registers, %d reference(s) rewritten to bumped pointers, %d invariant expression(s) hoisted (§6)",
				promoted, reduced, hoisted)
			if unrolled > 1 {
				msg += fmt.Sprintf(", body unrolled %d×", unrolled)
			}
			cfg.Diags.Report(diag.Diagnostic{
				Severity: diag.SevRemark,
				Code:     diag.StrengthReduced,
				Pos:      loop.Pos,
				Proc:     p.Name,
				Pass:     "strength",
				Message:  msg,
				Args: map[string]string{
					"promoted": fmt.Sprint(promoted),
					"reduced":  fmt.Sprint(reduced),
					"hoisted":  fmt.Sprint(hoisted),
					"unroll":   fmt.Sprint(unrolled),
					"schedule": sched.String(),
				},
			})
		}
	}
	return pre, post
}

// unroll replicates the loop body factor times (replica j reads the IV as
// IV + j·step), widens the step to factor·step, pulls the limit in by
// (factor−1)·step so every replica stays in bounds, and returns a
// remainder loop that continues from the main loop's exit IV — the §6
// loop-overhead reduction the schedule layer can ask for on serial loops.
// Replication in source order preserves every dependence, carried or not;
// the strength-reduction pointer bumps replicate with the body, so each
// replica advances the reduced pointers exactly as the original iteration
// did.
func unroll(p *il.Proc, loop *il.DoLoop, factor int, st *Stats) ([]il.Stmt, bool) {
	stepC, ok := il.IsIntConst(loop.Step)
	if !ok || stepC == 0 || factor < 2 {
		return nil, false
	}
	ivType := p.Vars[loop.IV].Type
	if ivType == nil {
		ivType = ctype.IntType
	}
	// The remainder continues at the main loop's exit IV (codegen defines
	// it: Init + trips·Step), covering the trips the widened step skips.
	rem := &il.DoLoop{IV: loop.IV, Init: il.Ref(loop.IV, ivType),
		Limit: il.CloneExpr(loop.Limit), Step: il.CloneExpr(loop.Step),
		Body: il.CloneStmts(loop.Body), Safe: loop.Safe, Pos: loop.Pos}
	var body []il.Stmt
	for j := 0; j < factor; j++ {
		clone := il.CloneStmts(loop.Body)
		if j > 0 {
			off := int64(j) * stepC
			for _, cs := range clone {
				il.RewriteTreeExprs(cs, func(e il.Expr) il.Expr {
					if v, isVar := e.(*il.VarRef); isVar && v.ID == loop.IV {
						return il.Add(il.Ref(loop.IV, ivType), il.Int(off), ivType)
					}
					return e
				})
			}
		}
		body = append(body, clone...)
	}
	loop.Body = body
	loop.Limit = il.Sub(il.CloneExpr(loop.Limit), il.Int(int64(factor-1)*stepC), ctype.IntType)
	loop.Step = il.Int(stepC * int64(factor))
	st.UnrolledLoops++
	return []il.Stmt{rem}, true
}

// ---------------------------------------------------------------- promotion

// promote finds a store→load carried flow dependence of distance 1 on the
// same base and keeps the value in a register.
func promote(p *il.Proc, loop *il.DoLoop, cfg Config, st *Stats) ([]il.Stmt, bool) {
	ld := cfg.Analysis.LoopDeps(p, loop, cfg.Depend)
	for _, b := range ld.Barrier {
		if b {
			return nil, false
		}
	}
	// Find the unique (store, load) pair with distance-1 flow.
	var storeRef, loadRef *depend.Ref
	for i := range ld.Refs {
		for j := range ld.Refs {
			a, b := &ld.Refs[i], &ld.Refs[j]
			if !a.IsWrite || b.IsWrite || !a.Linear || !b.Linear {
				continue
			}
			if a.Coef != b.Coef || a.Coef == 0 {
				continue
			}
			if a.Base.Kind != b.Base.Kind || a.Base.Var != b.Base.Var || !il.ExprEqual(a.Base.Extra, b.Base.Extra) {
				continue
			}
			// Load reads what the store wrote one iteration ago:
			// a.Offset - b.Offset == Coef  (for step +1 normalized loops).
			if a.Offset-b.Offset == a.Coef {
				if storeRef != nil {
					return nil, false // multiple candidates: bail
				}
				storeRef, loadRef = a, b
			}
		}
	}
	if storeRef == nil {
		return nil, false
	}
	// The store must be a top-level statement; the load must live in the
	// same or a later statement each iteration... for the backsolve shape
	// both are in the same statement.
	if storeRef.StmtIdx >= len(loop.Body) {
		return nil, false
	}
	storeStmt, ok := loop.Body[storeRef.StmtIdx].(*il.Assign)
	if !ok || !il.IsStore(storeStmt) {
		return nil, false
	}
	// Aside from this pair, no other reference may touch — or possibly
	// alias — the promoted base (conservative).
	for i := range ld.Refs {
		r := &ld.Refs[i]
		if r == storeRef || r == loadRef {
			continue
		}
		if !r.Linear || r.Base.Kind == depend.BaseUnknown {
			return nil, false
		}
		if depend.BasesMayAlias(p, r.Base, storeRef.Base, loop.Safe, cfg.Depend) {
			return nil, false
		}
	}
	// The pair itself must also be exact, not a may-alias guess: both
	// refs share a provably identical base by construction above.

	elem := elementType(storeStmt)
	reg := p.AddVar(il.Var{Name: fmt.Sprintf("f_reg%d", len(p.Vars)), Type: elem, Class: il.ClassTemp})
	regRef := func() *il.VarRef { return il.Ref(reg, elem) }

	// Preheader: reg = load at the first iteration's address.
	initAddr := substIV(loadRef.Expr, loop.IV, loop.Init)
	pre := []il.Stmt{&il.Assign{Dst: regRef(), Src: &il.Load{Addr: initAddr, T: elem}}}

	// Replace the load and funnel the store through the register.
	loadExpr := loadRef.Expr
	replaced := 0
	for _, s := range loop.Body {
		as, ok := s.(*il.Assign)
		if !ok {
			continue
		}
		as.Src = il.RewriteExpr(as.Src, func(e il.Expr) il.Expr {
			if l, isLoad := e.(*il.Load); isLoad && il.ExprEqual(l.Addr, loadExpr) {
				replaced++
				return regRef()
			}
			return e
		})
	}
	if replaced == 0 {
		return nil, false
	}
	// Split the store: reg = Src; *addr = reg.
	idx := storeRef.StmtIdx
	newBody := make([]il.Stmt, 0, len(loop.Body)+1)
	for i, s := range loop.Body {
		if i == idx {
			as := s.(*il.Assign)
			newBody = append(newBody,
				&il.Assign{Dst: regRef(), Src: as.Src},
				&il.Assign{Dst: as.Dst, Src: regRef()})
			continue
		}
		newBody = append(newBody, s)
	}
	loop.Body = newBody
	st.PromotedLoads += replaced
	return pre, true
}

// elementType returns the stored element type of a store statement.
func elementType(as *il.Assign) *ctype.Type {
	if l, ok := as.Dst.(*il.Load); ok {
		return l.T
	}
	return ctype.FloatType
}

// substIV replaces the loop IV in a cloned expression.
func substIV(e il.Expr, iv il.VarID, with il.Expr) il.Expr {
	return il.RewriteExpr(e, func(x il.Expr) il.Expr {
		if v, ok := x.(*il.VarRef); ok && v.ID == iv {
			return il.CloneExpr(with)
		}
		return x
	})
}

// ---------------------------------------------------------------- reduction

// addrClass groups references by (base expression, stride).
type addrClass struct {
	key  string
	base il.Expr
	coef int64
	ptr  il.VarID
	t    *ctype.Type // pointee for naming only
}

// reduce rewrites affine addresses into bumped pointers.
func reduce(p *il.Proc, loop *il.DoLoop, cfg Config, st *Stats) ([]il.Stmt, bool) {
	stepC, _ := il.IsIntConst(loop.Step)
	classes := map[string]*addrClass{}
	var order []*addrClass

	classify := func(addr il.Expr, elem *ctype.Type) (*addrClass, int64, bool) {
		coef, base, off, ok := affineParts(loop.IV, addr)
		if !ok || coef == 0 {
			return nil, 0, false
		}
		key := fmt.Sprintf("%s|%d", base.String(), coef)
		c, exists := classes[key]
		if !exists {
			c = &addrClass{key: key, base: base, coef: coef, t: elem}
			classes[key] = c
			order = append(order, c)
		}
		return c, off, true
	}

	// First pass: classify every reference.
	type rewriteTarget struct {
		class *addrClass
		off   int64
	}
	any := false
	for _, s := range loop.Body {
		as := s.(*il.Assign)
		check := func(addr il.Expr, elem *ctype.Type) {
			if _, _, ok := classify(addr, elem); ok {
				any = true
			}
		}
		if l, ok := as.Dst.(*il.Load); ok {
			check(l.Addr, l.T)
		}
		il.WalkExpr(as.Src, func(e il.Expr) bool {
			if l, ok := e.(*il.Load); ok {
				check(l.Addr, l.T)
			}
			return true
		})
	}
	if !any {
		return nil, false
	}

	// Allocate pointer temps and preheader initializations:
	//   ptr = base + coef·Init.
	var pre []il.Stmt
	for _, c := range order {
		pt := ctype.PointerTo(c.t)
		c.ptr = p.AddVar(il.Var{Name: fmt.Sprintf("temp_p%d", len(p.Vars)), Type: pt, Class: il.ClassTemp})
		init := il.Add(il.CloneExpr(c.base),
			il.Mul(il.Int(c.coef), il.CloneExpr(loop.Init), ctype.IntType), pt)
		pre = append(pre, &il.Assign{Dst: il.Ref(c.ptr, pt), Src: init})
		st.Pointers++
	}

	// Second pass: rewrite references and append the bumps.
	rewriteAddr := func(addr il.Expr, elem *ctype.Type) il.Expr {
		c, off, ok := classify(addr, elem)
		if !ok {
			return addr
		}
		st.ReducedRefs++
		pt := ctype.PointerTo(elem)
		return il.Add(il.Ref(c.ptr, pt), il.Int(off), pt)
	}
	for _, s := range loop.Body {
		as := s.(*il.Assign)
		if l, ok := as.Dst.(*il.Load); ok {
			as.Dst = &il.Load{Addr: rewriteAddr(l.Addr, l.T), T: l.T, Volatile: l.Volatile}
		}
		as.Src = il.RewriteExpr(as.Src, func(e il.Expr) il.Expr {
			if l, ok := e.(*il.Load); ok {
				return &il.Load{Addr: rewriteAddr(l.Addr, l.T), T: l.T, Volatile: l.Volatile}
			}
			return e
		})
	}
	for _, c := range order {
		pt := ctype.PointerTo(c.t)
		bump := il.Add(il.Ref(c.ptr, pt), il.Int(c.coef*stepC), pt)
		loop.Body = append(loop.Body, &il.Assign{Dst: il.Ref(c.ptr, pt), Src: bump})
	}
	return pre, true
}

// affineParts decomposes addr = base + coef·iv + off with base iv-free and
// off the constant part.
func affineParts(iv il.VarID, e il.Expr) (coef int64, base il.Expr, off int64, ok bool) {
	c, rest, okA := affine(iv, e)
	if !okA {
		return 0, nil, 0, false
	}
	// Split the constant part out of rest. Clone first: splitConst hands
	// back subtrees that outlive the statement they came from.
	off = 0
	base = il.CloneExpr(rest)
	base, off = splitConst(base)
	return c, base, off, true
}

// splitConst pulls additive integer constants out of e.
func splitConst(e il.Expr) (il.Expr, int64) {
	if c, ok := il.IsIntConst(e); ok {
		return il.Int(0), c
	}
	if b, ok := e.(*il.Bin); ok {
		switch b.Op {
		case il.OpAdd:
			l, cl := splitConst(b.L)
			r, cr := splitConst(b.R)
			return il.Add(l, r, b.T), cl + cr
		case il.OpSub:
			l, cl := splitConst(b.L)
			r, cr := splitConst(b.R)
			return il.Sub(l, r, b.T), cl - cr
		}
	}
	return e, 0
}

// affine mirrors the vectorizer's decomposition (coef, rest).
func affine(iv il.VarID, e il.Expr) (int64, il.Expr, bool) {
	switch n := e.(type) {
	case *il.ConstInt, *il.ConstFloat, *il.AddrOf:
		return 0, e, true
	case *il.VarRef:
		if n.ID == iv {
			return 1, il.Int(0), true
		}
		return 0, e, true
	case *il.Cast:
		if !il.UsesVar(n.X, iv) {
			return 0, e, true
		}
		return affine(iv, n.X)
	case *il.Bin:
		switch n.Op {
		case il.OpAdd:
			cl, rl, okl := affine(iv, n.L)
			cr, rr, okr := affine(iv, n.R)
			if !okl || !okr {
				return 0, nil, false
			}
			return cl + cr, il.Add(rl, rr, n.T), true
		case il.OpSub:
			cl, rl, okl := affine(iv, n.L)
			cr, rr, okr := affine(iv, n.R)
			if !okl || !okr {
				return 0, nil, false
			}
			return cl - cr, il.Sub(rl, rr, n.T), true
		case il.OpMul:
			if c, ok := il.IsIntConst(n.L); ok {
				ci, ri, oki := affine(iv, n.R)
				if !oki {
					return 0, nil, false
				}
				return c * ci, il.Mul(il.Int(c), ri, n.T), true
			}
			if c, ok := il.IsIntConst(n.R); ok {
				ci, ri, oki := affine(iv, n.L)
				if !oki {
					return 0, nil, false
				}
				return c * ci, il.Mul(ri, il.Int(c), n.T), true
			}
		}
	case *il.Un:
		if n.Op == il.OpNeg {
			c, r, ok := affine(iv, n.X)
			if !ok {
				return 0, nil, false
			}
			return -c, il.NewUn(il.OpNeg, r, n.T), true
		}
	}
	if !il.UsesVar(e, iv) && pureExpr(e) {
		return 0, e, true
	}
	return 0, nil, false
}

func pureExpr(e il.Expr) bool {
	ok := true
	il.WalkExpr(e, func(x il.Expr) bool {
		if _, isLoad := x.(*il.Load); isLoad {
			ok = false
		}
		return ok
	})
	return ok
}

// ---------------------------------------------------------------- hoisting

// hoist moves pure loop-invariant non-trivial subexpressions into
// preheader temporaries (loop-invariant code motion with CSE: equal
// expressions share a temp).
func hoist(p *il.Proc, loop *il.DoLoop, st *Stats) ([]il.Stmt, bool) {
	defined := map[il.VarID]bool{loop.IV: true}
	for _, s := range loop.Body {
		il.WalkStmts([]il.Stmt{s}, func(sub il.Stmt) bool {
			if dv := il.DefinedVar(sub); dv != il.NoVar {
				defined[dv] = true
			}
			return true
		})
	}
	invariant := func(e il.Expr) bool {
		if !pureExpr(e) {
			return false
		}
		ok := true
		il.WalkExpr(e, func(x il.Expr) bool {
			if v, isVar := x.(*il.VarRef); isVar {
				if defined[v.ID] || p.Vars[v.ID].IsVolatile() {
					ok = false
				}
			}
			return ok
		})
		return ok
	}
	size := func(e il.Expr) int {
		n := 0
		il.WalkExpr(e, func(il.Expr) bool { n++; return true })
		return n
	}

	temps := map[string]il.VarID{}
	var pre []il.Stmt
	changed := false
	for _, s := range loop.Body {
		as, ok := s.(*il.Assign)
		if !ok {
			continue
		}
		rewrite := func(e il.Expr) il.Expr {
			return il.RewriteExpr(e, func(x il.Expr) il.Expr {
				b, isBin := x.(*il.Bin)
				if !isBin || !invariant(b) || size(b) < 3 {
					return x
				}
				key := b.String()
				id, have := temps[key]
				if !have {
					id = p.NewTemp(b.T)
					temps[key] = id
					pre = append(pre, &il.Assign{Dst: il.Ref(id, b.T), Src: il.CloneExpr(b)})
					st.HoistedExprs++
				}
				changed = true
				return il.Ref(id, b.T)
			})
		}
		if l, isStore := as.Dst.(*il.Load); isStore {
			as.Dst = &il.Load{Addr: rewrite(l.Addr), T: l.T, Volatile: l.Volatile}
		}
		as.Src = rewrite(as.Src)
	}
	return pre, changed
}
