package strength

import (
	"strings"
	"testing"

	"repro/internal/depend"
	"repro/internal/il"
	"repro/internal/lower"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sema"
)

func compileOpt(t *testing.T, src, name string) *il.Proc {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := lower.File(f, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	p := prog.Proc(name)
	if p == nil {
		t.Fatalf("no proc %s", name)
	}
	opt.Optimize(p, opt.DefaultOptions())
	return p
}

const backsolveSrc = `
void backsolve(float *x, float *y, float *z, int n)
{
	float *p, *q;
	int i;
	p = &x[1];
	q = &x[0];
	for (i = 0; i < n-2; i++)
		p[i] = z[i] * (y[i] - q[i]);
}
`

func firstLoop(p *il.Proc) *il.DoLoop {
	var loop *il.DoLoop
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if d, ok := s.(*il.DoLoop); ok && loop == nil {
			loop = d
		}
		return loop == nil
	})
	return loop
}

func TestBacksolvePromotion(t *testing.T) {
	// §6: the recurrence value is pulled into a register; the loop body
	// afterwards loads only z[i] and y[i].
	p := compileOpt(t, backsolveSrc, "backsolve")
	st := OptimizeLoops(p, Config{Depend: depend.Options{NoAlias: true}})
	if st.PromotedLoads != 1 {
		t.Fatalf("promoted: %+v\n%s", st, p)
	}
	loop := firstLoop(p)
	loads := 0
	il.WalkStmts(loop.Body, func(s il.Stmt) bool {
		if as, ok := s.(*il.Assign); ok {
			il.WalkExpr(as.Src, func(e il.Expr) bool {
				if _, isLoad := e.(*il.Load); isLoad {
					loads++
				}
				return true
			})
		}
		return true
	})
	if loads != 2 {
		t.Errorf("loads in loop: %d, want 2 (z and y only)\n%s", loads, p)
	}
}

func TestBacksolveNoIntegerMultiplies(t *testing.T) {
	// §6: "strength reduction is able to eliminate all the integer
	// multiplications within the loop".
	p := compileOpt(t, backsolveSrc, "backsolve")
	OptimizeLoops(p, Config{Depend: depend.Options{NoAlias: true}})
	loop := firstLoop(p)
	muls := 0
	il.WalkStmts(loop.Body, func(s il.Stmt) bool {
		if as, ok := s.(*il.Assign); ok {
			count := func(e il.Expr) {
				il.WalkExpr(e, func(x il.Expr) bool {
					if b, isBin := x.(*il.Bin); isBin && b.Op == il.OpMul && b.T.IsInteger() {
						muls++
					}
					return true
				})
			}
			if l, isStore := as.Dst.(*il.Load); isStore {
				count(l.Addr)
			}
			count(as.Src)
		}
		return true
	})
	if muls != 0 {
		t.Errorf("integer multiplies left: %d\n%s", muls, p)
	}
}

func TestBacksolvePaperShape(t *testing.T) {
	// The §6 output: f_reg = x[0] preheader, bumped pointers, body of the
	// form f_reg = *temp_z * (*temp_y - f_reg); *temp_x = f_reg.
	p := compileOpt(t, backsolveSrc, "backsolve")
	st := OptimizeLoops(p, Config{Depend: depend.Options{NoAlias: true}})
	if st.Pointers < 3 {
		t.Errorf("pointer temps: %+v", st)
	}
	out := p.String()
	if !strings.Contains(out, "f_reg") {
		t.Errorf("no register promotion:\n%s", out)
	}
	// Pointer bumps at the loop bottom.
	loop := firstLoop(p)
	last := loop.Body[len(loop.Body)-1].(*il.Assign)
	if b, ok := last.Src.(*il.Bin); !ok || b.Op != il.OpAdd {
		t.Errorf("no trailing bump:\n%s", out)
	}
}

func TestAblationNoReductionKeepsMultiplies(t *testing.T) {
	// A1: without strength reduction the ivsub-introduced multiplications
	// stay in the loop.
	p := compileOpt(t, backsolveSrc, "backsolve")
	OptimizeLoops(p, Config{Depend: depend.Options{NoAlias: true}, NoReduction: true, NoPromotion: true})
	loop := firstLoop(p)
	muls := 0
	il.WalkStmts(loop.Body, func(s il.Stmt) bool {
		if as, ok := s.(*il.Assign); ok {
			count := func(e il.Expr) {
				il.WalkExpr(e, func(x il.Expr) bool {
					if b, isBin := x.(*il.Bin); isBin && b.Op == il.OpMul && b.T.IsInteger() {
						muls++
					}
					return true
				})
			}
			if l, isStore := as.Dst.(*il.Load); isStore {
				count(l.Addr)
			}
			count(as.Src)
		}
		return true
	})
	if muls == 0 {
		t.Errorf("expected leftover multiplies:\n%s", p)
	}
}

func TestSharedPointerForCommonBase(t *testing.T) {
	// Two references with identical base and stride share one pointer
	// (the CSE aspect of §6).
	src := `
float a[300], b[300];
void f(int n) {
	int i;
	for (i = 0; i < n; i++)
		b[i] = a[i] * a[i];
}
`
	p := compileOpt(t, src, "f")
	st := OptimizeLoops(p, Config{})
	if st.Pointers != 2 {
		t.Errorf("pointers: %d want 2 (a and b)\n%s", st.Pointers, p)
	}
}

func TestOffsetWithinClass(t *testing.T) {
	// a[i] and a[i+1]: same base and stride, different constant offsets —
	// one pointer, two addressed refs.
	src := `
float a[300], b[300];
void f(int n) {
	int i;
	for (i = 0; i < n; i++)
		b[i] = a[i] + a[i+1];
}
`
	p := compileOpt(t, src, "f")
	st := OptimizeLoops(p, Config{})
	if st.Pointers != 2 {
		t.Errorf("pointers: %d want 2\n%s", st.Pointers, p)
	}
}

func TestHoistInvariant(t *testing.T) {
	src := `
float a[100];
void f(float alpha, float beta, int n) {
	int i;
	for (i = 0; i < n; i++)
		a[i] = a[i] * (alpha * beta);
}
`
	p := compileOpt(t, src, "f")
	st := OptimizeLoops(p, Config{})
	if st.HoistedExprs == 0 {
		t.Errorf("alpha*beta not hoisted: %+v\n%s", st, p)
	}
}

func TestControlFlowLoopUntouched(t *testing.T) {
	src := `
float a[100];
void f(int n, int c) {
	int i;
	for (i = 0; i < n; i++) {
		if (c) a[i] = 0;
	}
}
`
	p := compileOpt(t, src, "f")
	st := OptimizeLoops(p, Config{})
	if st.LoopsTransformed != 0 {
		t.Errorf("control-flow loop transformed: %+v\n%s", st, p)
	}
}

func TestVolatileLoopUntouched(t *testing.T) {
	src := `
volatile float port[100];
float a[100];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[i] = port[i];
}
`
	p := compileOpt(t, src, "f")
	st := OptimizeLoops(p, Config{})
	if st.PromotedLoads != 0 || st.ReducedRefs != 0 {
		t.Errorf("volatile loop transformed: %+v\n%s", st, p)
	}
}

func TestNoPromotionWithoutDistanceOne(t *testing.T) {
	// Distance-2 recurrence would need two registers: not promoted.
	src := `
float c[500];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) c[i+2] = c[i];
}
`
	p := compileOpt(t, src, "f")
	st := OptimizeLoops(p, Config{})
	if st.PromotedLoads != 0 {
		t.Errorf("distance-2 promoted: %+v\n%s", st, p)
	}
}

func TestSemanticsPreservedManually(t *testing.T) {
	// Verify the rewritten backsolve computes what the original computes,
	// by interpreting the address arithmetic symbolically over a tiny
	// concrete memory. (The full interpreter lives in the titan package;
	// here we check the statement structure instead: the promoted
	// register must feed the store, and the store's address class must be
	// the x pointer with offset 4.)
	p := compileOpt(t, backsolveSrc, "backsolve")
	OptimizeLoops(p, Config{Depend: depend.Options{NoAlias: true}})
	loop := firstLoop(p)
	var storeStmt *il.Assign
	il.WalkStmts(loop.Body, func(s il.Stmt) bool {
		if as, ok := s.(*il.Assign); ok && il.IsStore(s) {
			storeStmt = as
		}
		return true
	})
	if storeStmt == nil {
		t.Fatalf("no store:\n%s", p)
	}
	if v, ok := storeStmt.Src.(*il.VarRef); !ok || !strings.HasPrefix(p.Vars[v.ID].Name, "f_reg") {
		t.Errorf("store does not come from the register: %s\n%s", p.StmtString(storeStmt, 0), p)
	}
}
