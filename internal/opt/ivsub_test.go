package opt

import (
	"strings"
	"testing"

	"repro/internal/il"
)

// runPipeline applies the full scalar pipeline.
func runPipeline(t *testing.T, src, name string) *il.Proc {
	t.Helper()
	p := compileProc(t, src, name)
	Optimize(p, DefaultOptions())
	return p
}

// storesInLoop returns the store statements inside the first DoLoop.
func storesInLoop(p *il.Proc) []*il.Assign {
	d := firstDoLoop(p.Body)
	if d == nil {
		return nil
	}
	var out []*il.Assign
	il.WalkStmts(d.Body, func(s il.Stmt) bool {
		if as, ok := s.(*il.Assign); ok && il.IsStore(s) {
			out = append(out, as)
		}
		return true
	})
	return out
}

func TestPaperCopyLoopBecomesLinear(t *testing.T) {
	// §5.3's centerpiece: while(n) { *a++ = *b++; n--; } must end up with
	// the single store *(a0 + 4*k) = *(b0 + 4*k) inside a DO loop.
	src := `
void f(float *a, float *b, int n) {
	while (n) {
		*a++ = *b++;
		n--;
	}
}
`
	p := runPipeline(t, src, "f")
	d := firstDoLoop(p.Body)
	if d == nil {
		t.Fatalf("no DO loop:\n%s", p)
	}
	stores := storesInLoop(p)
	if len(stores) != 1 {
		t.Fatalf("stores in loop: %d\n%s", len(stores), p)
	}
	st := stores[0]
	// Both sides must be loads/stores with addresses linear in the loop IV
	// — no remaining references to the bumped pointers.
	dstAddr := st.Dst.(*il.Load).Addr
	srcAddr := st.Src.(*il.Load).Addr
	if !il.UsesVar(dstAddr, d.IV) || !il.UsesVar(srcAddr, d.IV) {
		t.Errorf("addresses not in terms of loop IV:\n%s", p)
	}
	// The pointer bumps themselves must be gone (dead after substitution;
	// a and b are params, dead at exit).
	if n := len(d.Body); n != 1 {
		t.Errorf("loop body has %d statements, want 1:\n%s", n, p)
	}
}

func TestSimpleIVSubMissesCopyLoop(t *testing.T) {
	// Ablation A2: without copy resolution the front end's temp form
	// defeats recurrence detection and the loop keeps its pointer bumps.
	src := `
void f(float *a, float *b, int n) {
	while (n) {
		*a++ = *b++;
		n--;
	}
}
`
	p := compileProc(t, src, "f")
	Optimize(p, Options{IVSub: true, SimpleIVSub: true, NoCopyProp: true})
	d := firstDoLoop(p.Body)
	if d == nil {
		t.Fatalf("no DO loop:\n%s", p)
	}
	if len(d.Body) <= 1 {
		t.Errorf("simple IV-sub unexpectedly cleaned the loop:\n%s", p)
	}
}

func TestPaperReverseAxpy(t *testing.T) {
	// §5.3's Fortran example as C:
	//   iv = n; for (i=0;i<n;i++) { a[iv] = a[iv] + b[i]; iv = iv - 1; }
	// After substitution the subscript is explicit in i and iv's update is
	// dead.
	src := `
float a[200], b[200];
void f(int n) {
	int i, iv;
	iv = n;
	for (i = 0; i < n; i++) {
		a[iv] = a[iv] + b[i];
		iv = iv - 1;
	}
}
`
	p := runPipeline(t, src, "f")
	d := firstDoLoop(p.Body)
	if d == nil {
		t.Fatalf("no DO loop:\n%s", p)
	}
	if len(d.Body) != 1 {
		t.Errorf("iv update not eliminated (%d stmts):\n%s", len(d.Body), p)
	}
	stores := storesInLoop(p)
	if len(stores) != 1 {
		t.Fatalf("stores: %d", len(stores))
	}
	if !il.UsesVar(stores[0].Dst.(*il.Load).Addr, d.IV) {
		t.Errorf("store address not in loop IV:\n%s", p)
	}
}

func TestDaxpyFullPipeline(t *testing.T) {
	// §9's inlined daxpy core: after the full scalar pipeline the loop is
	// the single fused multiply-add store with linear addresses.
	src := `
void daxpy_core(float *x, float *y, float *z, float alpha, int n)
{
	for (; n; n--)
		*x++ = *y++ + alpha * *z++;
}
`
	p := runPipeline(t, src, "daxpy_core")
	d := firstDoLoop(p.Body)
	if d == nil {
		t.Fatalf("no DO loop:\n%s", p)
	}
	if len(d.Body) != 1 {
		t.Errorf("body: %d stmts\n%s", len(d.Body), p)
	}
	stores := storesInLoop(p)
	if len(stores) != 1 {
		t.Fatalf("stores: %d\n%s", len(stores), p)
	}
	// RHS: *(y0+4k) + alpha * *(z0+4k)
	rhs, ok := stores[0].Src.(*il.Bin)
	if !ok || rhs.Op != il.OpAdd {
		t.Fatalf("rhs: %s", p.ExprString(stores[0].Src))
	}
	out := p.ExprString(rhs)
	if !strings.Contains(out, "alpha") {
		t.Errorf("alpha missing from rhs: %s", out)
	}
}

func TestIVSubSkipsVolatile(t *testing.T) {
	src := `
volatile int vcount;
void f(float *a, int n) {
	int i;
	for (i = 0; i < n; i++) {
		a[i] = vcount;
		vcount = vcount + 1;
	}
}
`
	p := runPipeline(t, src, "f")
	// vcount must still be read and written inside the loop.
	d := firstDoLoop(p.Body)
	if d == nil {
		t.Fatalf("no DO loop:\n%s", p)
	}
	reads := 0
	il.WalkStmts(d.Body, func(s il.Stmt) bool {
		if as, ok := s.(*il.Assign); ok {
			if il.UsesVar(as.Src, p.LookupVar("vcount")) {
				reads++
			}
		}
		return true
	})
	if reads < 2 {
		t.Errorf("volatile accesses lost (%d reads):\n%s", reads, p)
	}
}

func TestIVSubTwoUpdatesSkipped(t *testing.T) {
	// A variable bumped twice per iteration is not a basic IV here.
	src := `
void f(float *a, int n) {
	int i, j;
	j = 0;
	for (i = 0; i < n; i++) {
		j = j + 1;
		a[j] = 0;
		j = j + 1;
	}
}
`
	p := runPipeline(t, src, "f")
	d := firstDoLoop(p.Body)
	if d == nil {
		t.Fatalf("no DO loop:\n%s", p)
	}
	// j's updates must survive.
	defs := 0
	il.WalkStmts(d.Body, func(s il.Stmt) bool {
		if il.DefinedVar(s) == p.LookupVar("j") {
			defs++
		}
		return true
	})
	if defs != 2 {
		t.Errorf("j defs: %d, want 2\n%s", defs, p)
	}
}

func TestIVSubNonUnitStep(t *testing.T) {
	src := `
void f(float *a, int n) {
	int i;
	float *p;
	p = a;
	for (i = 0; i < n; i++) {
		*p = 0;
		p = p + 2;
	}
}
`
	p := runPipeline(t, src, "f")
	d := firstDoLoop(p.Body)
	if d == nil {
		t.Fatalf("no DO loop:\n%s", p)
	}
	stores := storesInLoop(p)
	if len(stores) != 1 {
		t.Fatalf("stores: %d\n%s", len(stores), p)
	}
	// Address should contain stride 8 (2 floats).
	addr := p.ExprString(stores[0].Dst.(*il.Load).Addr)
	if !strings.Contains(addr, "8") {
		t.Errorf("stride 8 missing from address %s", addr)
	}
	if len(d.Body) != 1 {
		t.Errorf("pointer bump survived:\n%s", p)
	}
}

func TestIVSubPreservesValueAfterLoop(t *testing.T) {
	// iv is used after the loop: its update must keep producing the right
	// final value (the update stays, in closed form).
	src := `
int f(int n) {
	int i, iv;
	iv = 0;
	for (i = 0; i < n; i++) {
		iv = iv + 3;
	}
	return iv;
}
`
	p := runPipeline(t, src, "f")
	// iv must still be defined somewhere.
	found := false
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if il.DefinedVar(s) == p.LookupVar("iv") {
			found = true
		}
		return true
	})
	if !found {
		t.Errorf("iv's definition vanished though used after loop:\n%s", p)
	}
}

func TestForwardSubstBlockedByStore(t *testing.T) {
	// t = *q is a load: never forward-substituted (would duplicate or
	// reorder memory access past the store).
	src := `
void f(float *p, float *q, int n) {
	int i;
	float t;
	for (i = 0; i < n; i++) {
		t = q[i];
		p[i] = 1.0f;
		p[i] = p[i] + t;
	}
}
`
	p := runPipeline(t, src, "f")
	d := firstDoLoop(p.Body)
	if d == nil {
		t.Fatalf("no DO loop:\n%s", p)
	}
	// The load of q[i] must still happen before the stores.
	first, ok := d.Body[0].(*il.Assign)
	if !ok || il.DefinedVar(first) != p.LookupVar("t") {
		t.Errorf("load hoist/subst broke ordering:\n%s", p)
	}
}

func TestNestedLoopIVSub(t *testing.T) {
	src := `
float m[64];
void f(int n) {
	int i, j;
	float *p;
	p = m;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			*p = 0;
			p = p + 1;
		}
	}
}
`
	p := runPipeline(t, src, "f")
	// The inner loop's pointer bump substitutes against the inner IV; p
	// remains an IV of the outer loop (its inner-loop net effect is not a
	// constant per outer iteration unless n is known) — we only require
	// the inner loop store to be linear in the inner IV.
	var inner *il.DoLoop
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if d, ok := s.(*il.DoLoop); ok {
			inner = d // last found is innermost by walk order
		}
		return true
	})
	if inner == nil {
		t.Fatalf("no loops:\n%s", p)
	}
}
