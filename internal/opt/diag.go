package opt

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/diag"
	"repro/internal/il"
	"repro/internal/token"
)

// emitter funnels the scalar optimizer's decisions into a diag.Reporter.
// The fixpoint driver re-runs every sub-pass up to maxRounds times, so a
// site that stays blocked (or a loop already converted) would re-report
// each round; the emitter dedupes on (code, position, message) so each
// decision surfaces exactly once per procedure. A nil emitter drops
// everything, which keeps the non-diagnostic entry points allocation-free.
type emitter struct {
	r    *diag.Reporter
	proc string
	seen map[string]bool
}

func newEmitter(r *diag.Reporter, proc string) *emitter {
	if r == nil {
		return nil
	}
	return &emitter{r: r, proc: proc, seen: map[string]bool{}}
}

func (em *emitter) emit(sev diag.Severity, code diag.Code, pass string, pos token.Pos, args map[string]string, format string, a ...any) {
	if em == nil {
		return
	}
	msg := fmt.Sprintf(format, a...)
	key := fmt.Sprintf("%s|%d:%d|%s", code, pos.Line, pos.Col, msg)
	if em.seen[key] {
		return
	}
	em.seen[key] = true
	em.r.Report(diag.Diagnostic{
		Severity: sev,
		Code:     code,
		Pos:      pos,
		Proc:     em.proc,
		Pass:     pass,
		Message:  msg,
		Args:     args,
	})
}

func (em *emitter) remark(code diag.Code, pass string, pos token.Pos, args map[string]string, format string, a ...any) {
	em.emit(diag.SevRemark, code, pass, pos, args, format, a...)
}

func (em *emitter) warn(code diag.Code, pass string, pos token.Pos, format string, a ...any) {
	em.emit(diag.SevWarning, code, pass, pos, nil, format, a...)
}

// procPos returns the first nonzero statement position of p — the anchor
// for procedure-level diagnostics like fixpoint-capped.
func procPos(p *il.Proc) token.Pos {
	var pos token.Pos
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if q := il.StmtPos(s); q.Line != 0 {
			pos = q
			return false
		}
		return true
	})
	return pos
}

// OptimizeDiag is OptimizeWith with the optimizer's decisions reported as
// structured diagnostics: while→DO conversions (§5.2), induction-variable
// substitutions and §5.3 blocking outcomes, §8 unreachable-code deletions,
// and a warning when the scalar fixpoint is capped before convergence.
// A nil reporter makes it equivalent to OptimizeWith.
func OptimizeDiag(p *il.Proc, opts Options, ac *analysis.Cache, r *diag.Reporter) Counts {
	return optimize(p, opts, ac, newEmitter(r, p.Name))
}
