// Package opt implements the Titan compiler's scalar optimizations in the
// paper's order: while→DO conversion immediately after use-def chains are
// built (§5.2), constant propagation with the unreachable-code heuristic
// (§8), induction-variable substitution with blocking/backtracking (§5.3),
// forward/copy propagation, and dead-code elimination.
package opt

import (
	"repro/internal/analysis"
	"repro/internal/ctype"
	"repro/internal/dataflow"
	"repro/internal/diag"
	"repro/internal/il"
)

// ConvertWhileLoops converts while loops that are "DO loops cast in a
// different guise" (§5.2) into Fortran-style DoLoops. Returns the number of
// loops converted.
//
// A while loop converts when:
//   - no branch enters the loop body from outside (checked on the CFG);
//   - the condition compares a control variable i against a loop-invariant
//     bound (or is plain `i` with a downward step);
//   - i has exactly one definition inside the body, at the top level,
//     whose effect (resolved through single-use in-body copies, which is
//     how the front end emits i-- and i = i - s) is i ± c for a
//     loop-invariant c whose sign matches the condition's direction.
//
// Following the paper's own output, the body is left untouched — a fresh
// dummy variable counts the iterations, and the original updates to i stay
// in place for induction-variable substitution and dead-code elimination
// to clean up.
func ConvertWhileLoops(p *il.Proc) int { return ConvertWhileLoopsWith(p, nil) }

// conversion records one while→DO rewrite of a sweep, for the between-
// sweep §5.2 chain splice.
type conversion struct {
	w *il.While
	d *il.DoLoop
}

// ConvertWhileLoopsWith is ConvertWhileLoops against an analysis cache
// (nil analyzes directly).
func ConvertWhileLoopsWith(p *il.Proc, ac *analysis.Cache) int {
	return convertWhileLoops(p, ac, nil)
}

// convertWhileLoops is the emitter-threaded implementation: each
// conversion is reported as a whiledo-converted remark at the while loop's
// source position (§5.2).
func convertWhileLoops(p *il.Proc, ac *analysis.Cache, em *emitter) int {
	// Converting a loop invalidates the analysis for enclosing loops, so
	// the conversion iterates — each sweep converts the loops whose
	// analysis is still exact (innermost first). Between sweeps the §5.2
	// incremental-reconstruction obligation is discharged by splicing each
	// new DO node into the existing chains (SpliceWhileConversion) instead
	// of re-solving from scratch; the spliced analysis answers the
	// conversion queries exactly as a rebuilt one would, and is dropped
	// when the pass finishes (the generation bump keyed it stale).
	total := 0
	var a *dataflow.Analysis
	for {
		if a == nil {
			var err error
			a, err = ac.Dataflow(p)
			if err != nil {
				return total
			}
		}
		n := 0
		var convs []conversion
		p.Body = convertList(p, a, p.Body, &n, &convs, em)
		total += n
		p.Changed(n)
		if n == 0 {
			return total
		}
		for _, c := range convs {
			if !a.SpliceWhileConversion(c.w, c.d) {
				a = nil // fall back to a full re-solve
				break
			}
		}
	}
}

func convertList(p *il.Proc, a *dataflow.Analysis, list []il.Stmt, n *int, convs *[]conversion, em *emitter) []il.Stmt {
	out := make([]il.Stmt, 0, len(list))
	for _, s := range list {
		switch st := s.(type) {
		case *il.While:
			st.Body = convertList(p, a, st.Body, n, convs, em)
			if d := tryConvert(p, a, st, out); d != nil {
				*n++
				*convs = append(*convs, conversion{st, d})
				em.remark(diag.WhileConverted, "while-to-do", st.Pos, nil,
					"while loop proven countable and converted to a DO loop")
				out = append(out, d)
				continue
			}
		case *il.If:
			st.Then = convertList(p, a, st.Then, n, convs, em)
			st.Else = convertList(p, a, st.Else, n, convs, em)
		case *il.DoLoop:
			st.Body = convertList(p, a, st.Body, n, convs, em)
		case *il.DoParallel:
			st.Body = convertList(p, a, st.Body, n, convs, em)
		}
		out = append(out, s)
	}
	return out
}

// tryConvert returns the DoLoop replacing w, or nil. prev holds the
// statements preceding w in its parent list (the front end places the
// condition's statement list there, duplicated at the body bottom — §4).
func tryConvert(p *il.Proc, a *dataflow.Analysis, w *il.While, prev []il.Stmt) *il.DoLoop {
	// Bodies containing labels can be targets of branches into the loop;
	// check precisely on the CFG (§5.2 requirement 1).
	bodySet := map[il.Stmt]bool{}
	il.WalkStmts(w.Body, func(s il.Stmt) bool { bodySet[s] = true; return true })
	head, ok := a.Graph.NodeOf[w]
	if !ok || a.Graph.EntersBody(head, bodySet) {
		return nil
	}
	// A return/goto out of the body gives the loop multiple exits.
	irregular := false
	il.WalkStmts(w.Body, func(s il.Stmt) bool {
		switch g := s.(type) {
		case *il.Return:
			irregular = true
		case *il.Goto:
			// A goto to a label inside the body is a harmless internal
			// jump only if the label is in the body; otherwise it exits.
			target := findLabel(w.Body, g.Target)
			if !target {
				irregular = true
			}
		}
		return true
	})
	if irregular {
		return nil
	}

	// Identify the control variable and relation from the condition. Both
	// operands of a comparison are candidates (n > i controls on i).
	for _, cand := range condShapes(p, w.Cond) {
		if d := tryCandidate(p, a, w, prev, bodySet, cand); d != nil {
			return d
		}
	}
	return nil
}

// condCand is one reading of the loop condition.
type condCand struct {
	iv    il.VarID
	rel   relKind
	bound il.Expr
}

func tryCandidate(p *il.Proc, a *dataflow.Analysis, w *il.While, prev []il.Stmt, bodySet map[il.Stmt]bool, cand condCand) *il.DoLoop {
	iv, rel, bound := cand.iv, cand.rel, cand.bound
	v := p.Var(iv)
	if v.AddrTaken || v.Class == il.ClassGlobal || v.Class == il.ClassStatic || v.IsVolatile() {
		return nil
	}
	// Bound must be loop-invariant (§5.2 requirement 2, via use-def).
	if bound != nil && !invariantIn(p, a, bound, bodySet) {
		return nil
	}

	// The control variable must be updated exactly once per iteration: all
	// its in-body definitions must be unambiguous top-level assignments.
	defs := a.DefsInside(iv, bodySet)
	if len(defs) == 0 {
		return nil
	}
	for _, d := range defs {
		as, ok := d.Node.Stmt.(*il.Assign)
		if d.Ambiguous || !ok || !topLevel(w.Body, as) {
			return nil
		}
	}
	// Resolve the per-iteration recurrence of iv by symbolic execution of
	// the body (which sees through the front end's `temp = i; i = temp-s`
	// form and through the duplicated condition statement list).
	step, ok := bodyRecurrence(p, w.Body, prev, iv)
	if !ok || !invariantIn(p, a, step, bodySet) {
		return nil
	}

	// Direction: we need the sign of the step. Constant steps give it
	// exactly; otherwise conversion is unsafe (§5.2's "variation of bounds
	// and strides").
	stepC, isConst := il.IsIntConst(step)
	if !isConst || stepC == 0 {
		return nil
	}

	t := v.Type
	ivRef := il.Ref(iv, t)
	var limit il.Expr
	switch rel {
	case relNonZero:
		// while (i) with downward step: DO dummy = i, 1, -s (§5.2 example).
		if stepC >= 0 {
			return nil
		}
		limit = il.Int(1)
	case relLT: // i < bound
		if stepC <= 0 {
			return nil
		}
		limit = il.Sub(il.CloneExpr(bound), il.Int(1), t)
	case relLE:
		if stepC <= 0 {
			return nil
		}
		limit = il.CloneExpr(bound)
	case relGT: // i > bound, counting down
		if stepC >= 0 {
			return nil
		}
		limit = il.Add(il.CloneExpr(bound), il.Int(1), t)
	case relGE:
		if stepC >= 0 {
			return nil
		}
		limit = il.CloneExpr(bound)
	case relNE:
		// i != bound terminates exactly when the step divides the
		// distance; like the paper's while(i) case we accept the unit
		// steps that C loops produce in practice.
		if stepC == 1 {
			limit = il.Sub(il.CloneExpr(bound), il.Int(1), t)
		} else if stepC == -1 {
			limit = il.Add(il.CloneExpr(bound), il.Int(1), t)
		} else {
			return nil
		}
	default:
		return nil
	}

	dummy := p.AddVar(il.Var{Name: p.Vars[iv].Name + ".do", Type: ctype.IntType, Class: il.ClassTemp})
	return &il.DoLoop{
		IV:    dummy,
		Init:  ivRef,
		Limit: limit,
		Step:  il.Int(stepC),
		Body:  w.Body,
		Safe:  w.Safe,
		Pos:   w.Pos,
	}
}

type relKind int

const (
	relNone relKind = iota
	relNonZero
	relLT
	relLE
	relGT
	relGE
	relNE
)

// condShapes matches the while condition against the supported forms,
// returning every candidate (control variable, relation, bound) reading.
// The bound is nil for plain `i`.
func condShapes(p *il.Proc, cond il.Expr) []condCand {
	var out []condCand
	switch c := cond.(type) {
	case *il.VarRef:
		if c.Type() != nil && c.Type().IsInteger() {
			out = append(out, condCand{c.ID, relNonZero, nil})
		}
	case *il.Bin:
		if v, ok := c.L.(*il.VarRef); ok && isSimpleBound(c.R) {
			switch c.Op {
			case il.OpLt:
				out = append(out, condCand{v.ID, relLT, c.R})
			case il.OpLe:
				out = append(out, condCand{v.ID, relLE, c.R})
			case il.OpGt:
				out = append(out, condCand{v.ID, relGT, c.R})
			case il.OpGe:
				out = append(out, condCand{v.ID, relGE, c.R})
			case il.OpNe:
				if il.IsZero(c.R) {
					out = append(out, condCand{v.ID, relNonZero, nil})
				} else {
					out = append(out, condCand{v.ID, relNE, c.R})
				}
			}
		}
		// Mirrored: bound REL i.
		if v, ok := c.R.(*il.VarRef); ok && isSimpleBound(c.L) {
			switch c.Op {
			case il.OpGt: // bound > i  ≡  i < bound
				out = append(out, condCand{v.ID, relLT, c.L})
			case il.OpGe:
				out = append(out, condCand{v.ID, relLE, c.L})
			case il.OpLt:
				out = append(out, condCand{v.ID, relGT, c.L})
			case il.OpLe:
				out = append(out, condCand{v.ID, relGE, c.L})
			case il.OpNe:
				if il.IsZero(c.L) {
					out = append(out, condCand{v.ID, relNonZero, nil})
				} else {
					out = append(out, condCand{v.ID, relNE, c.L})
				}
			}
		}
	}
	return out
}

// isSimpleBound accepts pure expressions (no loads, no calls — those are
// statements) as candidate bounds.
func isSimpleBound(e il.Expr) bool {
	pure := true
	il.WalkExpr(e, func(x il.Expr) bool {
		if _, ok := x.(*il.Load); ok {
			pure = false
		}
		return pure
	})
	return pure
}

// invariantIn reports whether no variable used by e is defined inside the
// loop body.
func invariantIn(p *il.Proc, a *dataflow.Analysis, e il.Expr, bodySet map[il.Stmt]bool) bool {
	inv := true
	il.WalkExpr(e, func(x il.Expr) bool {
		if v, ok := x.(*il.VarRef); ok {
			if len(a.DefsInside(v.ID, bodySet)) > 0 {
				inv = false
			}
			if p.Vars[v.ID].IsVolatile() {
				inv = false
			}
		}
		return inv
	})
	return inv
}

// topLevel reports whether s is a direct element of list.
func topLevel(list []il.Stmt, s il.Stmt) bool {
	for _, t := range list {
		if t == s {
			return true
		}
	}
	return false
}

// findLabel reports whether a label named name occurs in list (recursively).
func findLabel(list []il.Stmt, name string) bool {
	found := false
	il.WalkStmts(list, func(s il.Stmt) bool {
		if l, ok := s.(*il.Label); ok && l.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// symEnv is a symbolic environment mapping variables to expressions over
// the values the variables held at the environment's start point.
type symEnv struct {
	vals    map[il.VarID]il.Expr
	unknown map[il.VarID]bool
}

func newSymEnv() *symEnv {
	return &symEnv{vals: map[il.VarID]il.Expr{}, unknown: map[il.VarID]bool{}}
}

// lookup returns the symbolic value of v (Ref(v) meaning "entry value").
func (se *symEnv) lookup(v il.VarID, t *il.VarRef) il.Expr {
	if e, ok := se.vals[v]; ok {
		return il.CloneExpr(e)
	}
	return il.CloneExpr(t)
}

const symEnvMaxNodes = 64

// subst rewrites e replacing each variable by its symbolic value; returns
// false when the result involves an unknown or grows too large.
func (se *symEnv) subst(e il.Expr) (il.Expr, bool) {
	bad := false
	nodes := 0
	out := il.RewriteExpr(e, func(x il.Expr) il.Expr {
		nodes++
		if v, ok := x.(*il.VarRef); ok {
			if se.unknown[v.ID] {
				bad = true
				return x
			}
			return se.lookup(v.ID, v)
		}
		return x
	})
	if bad || nodes > symEnvMaxNodes {
		return nil, false
	}
	return out, true
}

// exec symbolically executes one top-level statement. Statements with
// effects we cannot model set the affected variables to unknown.
func (se *symEnv) exec(p *il.Proc, s il.Stmt) bool {
	poison := func(v il.VarID) {
		delete(se.vals, v)
		se.unknown[v] = true
	}
	poisonMemory := func() {
		for i := range p.Vars {
			v := &p.Vars[i]
			if v.AddrTaken || v.Class == il.ClassGlobal || v.Class == il.ClassStatic {
				poison(il.VarID(i))
			}
		}
	}
	switch n := s.(type) {
	case *il.Assign:
		if dst, ok := n.Dst.(*il.VarRef); ok {
			if !isSimpleBound(n.Src) {
				poison(dst.ID)
				return true
			}
			val, ok := se.subst(n.Src)
			if !ok {
				poison(dst.ID)
				return true
			}
			se.vals[dst.ID] = val
			delete(se.unknown, dst.ID)
			return true
		}
		poisonMemory()
		return true
	case *il.VectorAssign:
		poisonMemory()
		return true
	case *il.Call:
		if n.Dst != il.NoVar {
			poison(n.Dst)
		}
		poisonMemory()
		return true
	case *il.If, *il.While, *il.DoLoop, *il.DoParallel:
		// Poison everything a nested region might define.
		il.WalkStmts([]il.Stmt{s}, func(sub il.Stmt) bool {
			if dv := il.DefinedVar(sub); dv != il.NoVar {
				poison(dv)
			}
			if il.IsStore(sub) {
				poisonMemory()
			}
			if _, ok := sub.(*il.Call); ok {
				poisonMemory()
			}
			switch l := sub.(type) {
			case *il.DoLoop:
				poison(l.IV)
			case *il.DoParallel:
				poison(l.IV)
			}
			return true
		})
		return true
	case *il.Label, *il.Goto, *il.Return:
		// Control transfers break straight-line symbolic execution.
		return false
	}
	return false
}

// bodyRecurrence computes the per-iteration recurrence of iv: the symbolic
// value of iv after one execution of the body, expressed as iv + step.
// It uses the duplicated condition statement list (the common suffix of
// prev and body, §4) to recover head-invariant relations such as
// "n == t-1 at the loop head" that arise from while(n--)-style loops.
func bodyRecurrence(p *il.Proc, body, prev []il.Stmt, iv il.VarID) (il.Expr, bool) {
	env := newSymEnv()
	for _, s := range body {
		if !env.exec(p, s) {
			return nil, false
		}
	}
	next, ok := env.vals[iv]
	if !ok {
		return nil, false
	}
	next = il.CloneExpr(next)

	// Apply head facts derived from the duplicated suffix until the
	// expression mentions iv or stops changing.
	facts := headFacts(p, body, prev)
	for i := 0; i < 4 && !il.UsesVar(next, iv); i++ {
		changed := false
		next = il.RewriteExpr(next, func(x il.Expr) il.Expr {
			if v, ok := x.(*il.VarRef); ok {
				if f, ok := facts[v.ID]; ok {
					changed = true
					return il.CloneExpr(f)
				}
			}
			return x
		})
		if !changed {
			break
		}
	}

	return matchRecurrence(next, iv)
}

// matchRecurrence matches e against iv + c / c + iv / iv - c.
func matchRecurrence(e il.Expr, iv il.VarID) (il.Expr, bool) {
	b, ok := e.(*il.Bin)
	if !ok {
		return nil, false
	}
	if v, ok := b.L.(*il.VarRef); ok && v.ID == iv && !il.UsesVar(b.R, iv) {
		switch b.Op {
		case il.OpAdd:
			return b.R, true
		case il.OpSub:
			return il.NewUn(il.OpNeg, il.CloneExpr(b.R), b.R.Type()), true
		}
	}
	if v, ok := b.R.(*il.VarRef); ok && v.ID == iv && b.Op == il.OpAdd && !il.UsesVar(b.L, iv) {
		return b.L, true
	}
	return nil, false
}

// headFacts derives equalities that hold at the loop head from the
// condition statement list that the front end emits both before the loop
// and at the bottom of the body. For the §4 pattern [t = n; n = t-1] it
// yields n → t-1 (the value of n at the head, in terms of head values).
func headFacts(p *il.Proc, body, prev []il.Stmt) map[il.VarID]il.Expr {
	k := commonSuffix(body, prev)
	if k == 0 {
		return nil
	}
	suffix := body[len(body)-k:]
	env := newSymEnv()
	for _, s := range suffix {
		if !env.exec(p, s) {
			return nil
		}
	}
	// Variables whose symbolic value is a plain pre-suffix variable give a
	// renaming: pre-value(y) = head-value(x). Iterate in id order so that
	// when several head variables rename the same pre-value, the choice is
	// deterministic.
	var keys []il.VarID
	for x := range env.vals {
		keys = append(keys, x)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	rename := map[il.VarID]il.Expr{}
	for _, x := range keys {
		if y, ok := env.vals[x].(*il.VarRef); ok {
			if _, exists := rename[y.ID]; !exists {
				rename[y.ID] = il.Ref(x, y.T)
			}
		}
	}
	if len(rename) == 0 {
		return nil
	}
	facts := map[il.VarID]il.Expr{}
	for _, x := range keys {
		val := env.vals[x]
		if _, isPlain := val.(*il.VarRef); isPlain {
			continue
		}
		ok := true
		f := il.RewriteExpr(val, func(e il.Expr) il.Expr {
			v, isVar := e.(*il.VarRef)
			if !isVar {
				return e
			}
			// Every VarRef in val denotes the variable's pre-suffix value.
			if r, has := rename[v.ID]; has {
				return il.CloneExpr(r)
			}
			if _, defined := env.vals[v.ID]; defined {
				// Redefined by the suffix with no renaming: the pre-value
				// is not expressible in head terms.
				ok = false
			}
			return e
		})
		if ok {
			facts[x] = f
		}
	}
	return facts
}

// commonSuffix returns the length of the longest common structurally-equal
// suffix of a and b (capped).
func commonSuffix(a, b []il.Stmt) int {
	max := len(a)
	if len(b) < max {
		max = len(b)
	}
	if max > 8 {
		max = 8
	}
	k := 0
	for k < max {
		sa := a[len(a)-1-k]
		sb := b[len(b)-1-k]
		if !stmtEqual(sa, sb) {
			break
		}
		k++
	}
	return k
}

// stmtEqual compares simple assignments structurally.
func stmtEqual(a, b il.Stmt) bool {
	x, ok1 := a.(*il.Assign)
	y, ok2 := b.(*il.Assign)
	if !ok1 || !ok2 {
		return false
	}
	return il.ExprEqual(x.Dst, y.Dst) && il.ExprEqual(x.Src, y.Src)
}
