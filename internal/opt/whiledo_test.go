package opt

import (
	"testing"

	"repro/internal/il"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sema"
)

// compileProc lowers a source file and returns the named procedure.
func compileProc(t *testing.T, src, name string) *il.Proc {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := lower.File(f, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	p := prog.Proc(name)
	if p == nil {
		t.Fatalf("no proc %s", name)
	}
	return p
}

// firstDoLoop finds the first DoLoop in the body.
func firstDoLoop(body []il.Stmt) *il.DoLoop {
	var found *il.DoLoop
	il.WalkStmts(body, func(s il.Stmt) bool {
		if d, ok := s.(*il.DoLoop); ok && found == nil {
			found = d
		}
		return found == nil
	})
	return found
}

func countLoops(body []il.Stmt) (whiles, dos int) {
	il.WalkStmts(body, func(s il.Stmt) bool {
		switch s.(type) {
		case *il.While:
			whiles++
		case *il.DoLoop:
			dos++
		}
		return true
	})
	return
}

func TestConvertCountedForLoop(t *testing.T) {
	p := compileProc(t, "void f(int n) { int i; for (i = 0; i < n; i++) ; }", "f")
	if got := ConvertWhileLoops(p); got != 1 {
		t.Fatalf("converted %d loops\n%s", got, p)
	}
	d := firstDoLoop(p.Body)
	if d == nil {
		t.Fatalf("no DoLoop:\n%s", p)
	}
	// Init is i (whose value is 0 at entry), step 1, limit n-1.
	if v, ok := il.IsIntConst(d.Step); !ok || v != 1 {
		t.Errorf("step: %s", p.ExprString(d.Step))
	}
	lim, ok := d.Limit.(*il.Bin)
	if !ok || lim.Op != il.OpSub {
		t.Errorf("limit: %s (want n-1)", p.ExprString(d.Limit))
	}
}

func TestConvertPaperCountdown(t *testing.T) {
	// §5.2's example: i = n; while (i) { ... i = temp - s; }
	src := `
void f(int n, int s) {
	int i, temp;
	i = n;
	while (i) {
		temp = i;
		i = temp - s;
	}
}
`
	p := compileProc(t, src, "f")
	// Step s is not a compile-time constant: direction unknown → no convert.
	if got := ConvertWhileLoops(p); got != 0 {
		t.Fatalf("converted %d (step sign unknown)\n%s", got, p)
	}
}

func TestConvertPaperCountdownConstStep(t *testing.T) {
	src := `
void f(int n) {
	int i, temp;
	i = n;
	while (i) {
		temp = i;
		i = temp - 2;
	}
}
`
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 1 {
		t.Fatalf("converted %d\n%s", got, p)
	}
	d := firstDoLoop(p.Body)
	if v, ok := il.IsIntConst(d.Step); !ok || v != -2 {
		t.Errorf("step: %s", p.ExprString(d.Step))
	}
	if v, ok := il.IsIntConst(d.Limit); !ok || v != 1 {
		t.Errorf("limit: %s (want 1 for countdown)", p.ExprString(d.Limit))
	}
	// The original body must be preserved (the paper keeps the updates).
	if len(d.Body) != 2 {
		t.Errorf("body rewritten: %d stmts", len(d.Body))
	}
}

func TestConvertWhileNMinusMinus(t *testing.T) {
	// while (n--) — the condition's side effect appears as a duplicated
	// statement list; recurrence runs through the head facts.
	src := "void f(int n) { while (n--) ; }"
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 1 {
		t.Fatalf("converted %d\n%s", got, p)
	}
	d := firstDoLoop(p.Body)
	if v, ok := il.IsIntConst(d.Step); !ok || v != -1 {
		t.Errorf("step: %s", p.ExprString(d.Step))
	}
}

func TestConvertPaperCopyLoop(t *testing.T) {
	// §5.3: while(n) { *a++ = *b++; n--; }
	src := `
void f(float *a, float *b, int n) {
	while (n) {
		*a++ = *b++;
		n--;
	}
}
`
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 1 {
		t.Fatalf("converted %d\n%s", got, p)
	}
}

func TestNoConvertVaryingBound(t *testing.T) {
	// §5.2: bounds that vary within the loop block conversion.
	src := `
void f(int n) {
	int i;
	i = 0;
	while (i < n) {
		i = i + 1;
		n = n - 1;
	}
}
`
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 0 {
		t.Fatalf("converted %d (bound varies)\n%s", got, p)
	}
}

func TestNoConvertGotoIntoLoop(t *testing.T) {
	// §5.2: branches entering the loop disqualify it.
	src := `
void f(int n, int c) {
	int i;
	i = 0;
	if (c) goto inside;
	while (i < n) {
inside:
		i = i + 1;
	}
}
`
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 0 {
		t.Fatalf("converted %d (goto into loop)\n%s", got, p)
	}
}

func TestNoConvertBreakOut(t *testing.T) {
	src := `
void f(int n, int c) {
	int i;
	for (i = 0; i < n; i++)
		if (i == c) break;
}
`
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 0 {
		t.Fatalf("converted %d (break exits loop)\n%s", got, p)
	}
}

func TestNoConvertVolatileControl(t *testing.T) {
	// §1: the keyboard_status busy-wait loop must stay a while loop.
	src := `
volatile int ks;
void f(void) {
	ks = 0;
	while (!ks) ;
}
`
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 0 {
		t.Fatalf("converted %d (volatile condition)\n%s", got, p)
	}
}

func TestNoConvertCallInBody(t *testing.T) {
	// A call may modify a global control variable.
	src := `
int n;
void g(void);
void f(void) {
	while (n) {
		g();
		n = n - 1;
	}
}
`
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 0 {
		t.Fatalf("converted %d (global iv + call)\n%s", got, p)
	}
}

func TestNoConvertAddrTakenControl(t *testing.T) {
	src := `
void g(int *);
void f(int n) {
	int i;
	i = 0;
	g(&i);
	while (i < n) {
		*(&i) = i + 1;
	}
}
`
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 0 {
		t.Fatalf("converted %d (addr-taken iv)\n%s", got, p)
	}
}

func TestConvertGE(t *testing.T) {
	src := `
void f(int n) {
	int i;
	for (i = n; i >= 0; i--) ;
}
`
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 1 {
		t.Fatalf("converted %d\n%s", got, p)
	}
	d := firstDoLoop(p.Body)
	if v, ok := il.IsIntConst(d.Limit); !ok || v != 0 {
		t.Errorf("limit: %s", p.ExprString(d.Limit))
	}
	if v, ok := il.IsIntConst(d.Step); !ok || v != -1 {
		t.Errorf("step: %s", p.ExprString(d.Step))
	}
}

func TestConvertNEForm(t *testing.T) {
	src := "void f(int n) { int i; for (i = 0; i != n; i++) ; }"
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 1 {
		t.Fatalf("converted %d\n%s", got, p)
	}
}

func TestConvertMirroredCond(t *testing.T) {
	// n > i  ≡  i < n
	src := "void f(int n) { int i; for (i = 0; n > i; i++) ; }"
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 1 {
		t.Fatalf("converted %d\n%s", got, p)
	}
	d := firstDoLoop(p.Body)
	if v, ok := il.IsIntConst(d.Step); !ok || v != 1 {
		t.Errorf("step: %s", p.ExprString(d.Step))
	}
}

func TestWrongDirectionNotConverted(t *testing.T) {
	// i < n with a downward step is an infinite or zero-trip loop the
	// converter must not touch.
	src := `
void f(int n) {
	int i;
	i = 0;
	while (i < n) i = i - 1;
}
`
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 0 {
		t.Fatalf("converted %d (direction mismatch)\n%s", got, p)
	}
}

func TestNestedLoopsBothConvert(t *testing.T) {
	src := `
float a[16][16];
void f(int n) {
	int i, j;
	for (i = 0; i < n; i++)
		for (j = 0; j < n; j++)
			a[i][j] = 0;
}
`
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 2 {
		t.Fatalf("converted %d\n%s", got, p)
	}
	w, d := countLoops(p.Body)
	if w != 0 || d != 2 {
		t.Errorf("whiles=%d dos=%d", w, d)
	}
}

func TestTwoUpdatesNotConverted(t *testing.T) {
	src := `
void f(int n, int c) {
	int i;
	i = 0;
	while (i < n) {
		i = i + 1;
		if (c) i = i + 2;
	}
}
`
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 0 {
		t.Fatalf("converted %d (two updates)\n%s", got, p)
	}
}

func TestSafeFlagPreserved(t *testing.T) {
	src := "void f(float *x, int n) {\n#pragma safe\n\twhile (n) { *x++ = 0; n--; }\n}"
	p := compileProc(t, src, "f")
	if got := ConvertWhileLoops(p); got != 1 {
		t.Fatalf("converted %d\n%s", got, p)
	}
	if d := firstDoLoop(p.Body); !d.Safe {
		t.Error("safe flag lost in conversion")
	}
}
