package opt

import (
	"repro/internal/analysis"
	"repro/internal/dataflow"
	"repro/internal/il"
)

// EliminateDeadCode removes assignments to variables that are not live
// afterwards ("dead, not unreachable, code" — §9). Inlining makes this
// crucial: parameter-binding temporaries die as soon as substitution and
// constant propagation run. Returns the number of statements removed.
func EliminateDeadCode(p *il.Proc) int { return EliminateDeadCodeWith(p, nil) }

// EliminateDeadCodeWith is EliminateDeadCode against an analysis cache
// (nil re-solves every round).
func EliminateDeadCodeWith(p *il.Proc, ac *analysis.Cache) int {
	total := 0
	for {
		n := dceOnce(p, ac)
		total += n
		if n == 0 {
			return total
		}
	}
}

func dceOnce(p *il.Proc, ac *analysis.Cache) int {
	a, lv, err := ac.DataflowLiveness(p)
	if err != nil {
		return 0
	}
	needed := markNeededDefs(p, a)
	removed := 0
	var clean func([]il.Stmt) []il.Stmt
	clean = func(list []il.Stmt) []il.Stmt {
		out := make([]il.Stmt, 0, len(list))
		for _, s := range list {
			switch n := s.(type) {
			case *il.Assign:
				if dst, ok := n.Dst.(*il.VarRef); ok {
					dead := !lv.LiveOut(s, dst.ID) || !needed[s]
					v := &p.Vars[dst.ID]
					if dead && !v.IsVolatile() && !p.HasVolatile(n.Src) {
						removed++
						continue
					}
				}
			case *il.If:
				n.Then = clean(n.Then)
				n.Else = clean(n.Else)
				if len(n.Then) == 0 && len(n.Else) == 0 && !p.HasVolatile(n.Cond) {
					removed++
					continue
				}
			case *il.While:
				n.Body = clean(n.Body)
			case *il.DoLoop:
				n.Body = clean(n.Body)
				if len(n.Body) == 0 && !lv.LiveOut(s, n.IV) {
					removed++
					continue
				}
			case *il.DoParallel:
				n.Body = clean(n.Body)
				if len(n.Body) == 0 && !lv.LiveOut(s, n.IV) {
					removed++
					continue
				}
			}
			out = append(out, s)
		}
		return out
	}
	p.Body = clean(p.Body)
	return p.Changed(removed)
}

// markNeededDefs runs the mark phase of mark-sweep dead-code elimination:
// essential statements (calls, stores, returns, control conditions, writes
// to externally visible variables) seed a worklist, and every definition
// transitively feeding an essential use is marked. Pure assignments whose
// statement never gets marked are dead even when they feed themselves in a
// cycle (i = i + 1 with no other use).
func markNeededDefs(p *il.Proc, a *dataflow.Analysis) map[il.Stmt]bool {
	essential := func(s il.Stmt) bool {
		switch n := s.(type) {
		case *il.Call, *il.Return, *il.VectorAssign, *il.If, *il.While,
			*il.DoLoop, *il.DoParallel, *il.Goto, *il.Label:
			return true
		case *il.Assign:
			if il.IsStore(s) {
				return true
			}
			dst := n.Dst.(*il.VarRef)
			v := &p.Vars[dst.ID]
			if v.IsVolatile() || v.Class == il.ClassGlobal || v.Class == il.ClassStatic || v.AddrTaken {
				return true
			}
			return p.HasVolatile(n.Src)
		}
		return false
	}

	marked := map[il.Stmt]bool{}
	var work []il.Stmt
	need := func(s il.Stmt) {
		if s != nil && !marked[s] {
			marked[s] = true
			work = append(work, s)
		}
	}
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if essential(s) {
			need(s)
		}
		return true
	})
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		for _, v := range dataflow.UsedVars(s) {
			a.ForEachReachingDef(s, v, func(d *dataflow.Def) {
				need(d.Node.Stmt)
			})
		}
	}
	return marked
}

// PropagateCopies replaces uses of a variable with the source of a copy
// assignment `v = w`, `v = &x`, or `v = <pure expression>` when that copy
// is available on every path (the classic available-copies dataflow,
// extended to forward propagation of load-free expressions — the paper's
// "propagating address constants", which is safe because strength
// reduction and subexpression elimination undo any recomputation it
// introduces, §11). Returns the number of rewrites performed.
func PropagateCopies(p *il.Proc) int { return PropagateCopiesWith(p, nil) }

// PropagateCopiesWith is PropagateCopies against an analysis cache (nil
// re-solves every round).
func PropagateCopiesWith(p *il.Proc, ac *analysis.Cache) int {
	total := 0
	for {
		n := copyPropOnce(p, ac)
		total += n
		if n == 0 {
			return total
		}
	}
}

// copy instance: statement assigning v = <pure expr>.
type copyInst struct {
	stmt    *il.Assign
	dst     il.VarID
	src     il.Expr
	srcVars []il.VarID
}

// copyExprLimit bounds the size of propagated expressions.
const copyExprLimit = 16

func copyPropOnce(p *il.Proc, ac *analysis.Cache) int {
	a, err := ac.Dataflow(p)
	if err != nil {
		return 0
	}
	g := a.Graph

	// Collect copy instances: pure, load-free, volatile-free sources of
	// bounded size that do not reference their own destination.
	var copies []copyInst
	copyIdx := map[il.Stmt]int{}
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		as, ok := s.(*il.Assign)
		if !ok {
			return true
		}
		dst, ok := as.Dst.(*il.VarRef)
		if !ok || p.Vars[dst.ID].IsVolatile() {
			return true
		}
		nodes := 0
		pure := true
		var srcVars []il.VarID
		il.WalkExpr(as.Src, func(x il.Expr) bool {
			nodes++
			switch n := x.(type) {
			case *il.Load:
				pure = false
			case *il.VarRef:
				if p.Vars[n.ID].IsVolatile() || n.ID == dst.ID {
					pure = false
				}
				srcVars = append(srcVars, n.ID)
			}
			return pure
		})
		if !pure || nodes > copyExprLimit {
			return true
		}
		copyIdx[s] = len(copies)
		copies = append(copies, copyInst{as, dst.ID, as.Src, srcVars})
		return true
	})
	if len(copies) == 0 {
		return 0
	}

	// nodeKills returns the variables a node may define.
	nodeKills := func(s il.Stmt) []il.VarID {
		if s == nil {
			return nil
		}
		var out []il.VarID
		if dv := il.DefinedVar(s); dv != il.NoVar {
			out = append(out, dv)
		}
		clobbers := false
		switch s.(type) {
		case *il.Call, *il.VectorAssign:
			clobbers = true
		case *il.Assign:
			clobbers = il.IsStore(s)
		}
		if clobbers {
			for i := range p.Vars {
				v := &p.Vars[i]
				if v.AddrTaken || v.Class == il.ClassGlobal || v.Class == il.ClassStatic {
					out = append(out, il.VarID(i))
				}
			}
		}
		return out
	}

	// gen/kill bitsets over copies.
	nNodes := len(g.Nodes)
	gen := make([]map[int]bool, nNodes)
	kill := make([]map[int]bool, nNodes)
	for id, n := range g.Nodes {
		gen[id] = map[int]bool{}
		kill[id] = map[int]bool{}
		kills := nodeKills(n.Stmt)
		if n.IVDef != il.NoVar {
			kills = append(kills, n.IVDef)
		}
		for _, kv := range kills {
			for ci := range copies {
				c := &copies[ci]
				if c.dst == kv {
					kill[id][ci] = true
				}
				for _, sv := range c.srcVars {
					if sv == kv {
						kill[id][ci] = true
					}
				}
			}
		}
		if n.Stmt != nil {
			if ci, ok := copyIdx[n.Stmt]; ok {
				// gen is applied after kill, so the copy survives its own
				// destination-kill (a copy never defines its source).
				gen[id][ci] = true
			}
		}
	}

	// Forward must-analysis: in[n] = ∩ out[preds]; entry = ∅.
	all := map[int]bool{}
	for i := range copies {
		all[i] = true
	}
	in := make([]map[int]bool, nNodes)
	out := make([]map[int]bool, nNodes)
	reach := g.Reachable()
	for i := 0; i < nNodes; i++ {
		if i == g.Entry {
			out[i] = map[int]bool{}
			in[i] = map[int]bool{}
		} else {
			out[i] = cloneSet(all)
			in[i] = cloneSet(all)
		}
	}
	changed := true
	for changed {
		changed = false
		for id, n := range g.Nodes {
			if !reach[id] || id == g.Entry {
				continue
			}
			var newIn map[int]bool
			for _, pr := range n.Preds {
				if !reach[pr] {
					continue
				}
				if newIn == nil {
					newIn = cloneSet(out[pr])
				} else {
					newIn = intersectSet(newIn, out[pr])
				}
			}
			if newIn == nil {
				newIn = map[int]bool{}
			}
			newOut := cloneSet(newIn)
			for k := range kill[id] {
				delete(newOut, k)
			}
			for k := range gen[id] {
				newOut[k] = true
			}
			if !equalSet(newIn, in[id]) || !equalSet(newOut, out[id]) {
				in[id] = newIn
				out[id] = newOut
				changed = true
			}
		}
	}

	// Rewrite uses with available copies.
	rewrites := 0
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		node, ok := g.NodeOf[s]
		if !ok || !reach[node.ID] {
			return true
		}
		avail := in[node.ID]
		replace := func(x il.Expr) il.Expr {
			v, ok := x.(*il.VarRef)
			if !ok {
				return x
			}
			// Iterate in copy-index order for determinism when several
			// copies of the same destination are available.
			for ci := range copies {
				if avail[ci] && copies[ci].dst == v.ID && copies[ci].stmt != s {
					rewrites++
					return il.CloneExpr(copies[ci].src)
				}
			}
			return x
		}
		switch n := s.(type) {
		case *il.Assign:
			if ld, ok := n.Dst.(*il.Load); ok {
				ld.Addr = il.RewriteExpr(ld.Addr, replace)
			}
			n.Src = il.RewriteExpr(n.Src, replace)
		default:
			il.RewriteStmtExprs(s, replace)
		}
		return true
	})
	return p.Changed(rewrites)
}

func cloneSet(s map[int]bool) map[int]bool {
	c := make(map[int]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func intersectSet(a, b map[int]bool) map[int]bool {
	o := map[int]bool{}
	for k := range a {
		if b[k] {
			o[k] = true
		}
	}
	return o
}

func equalSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
