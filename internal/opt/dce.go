package opt

import (
	"repro/internal/analysis"
	"repro/internal/dataflow"
	"repro/internal/il"
)

// EliminateDeadCode removes assignments to variables that are not live
// afterwards ("dead, not unreachable, code" — §9). Inlining makes this
// crucial: parameter-binding temporaries die as soon as substitution and
// constant propagation run. Returns the number of statements removed.
func EliminateDeadCode(p *il.Proc) int { return EliminateDeadCodeWith(p, nil) }

// EliminateDeadCodeWith is EliminateDeadCode against an analysis cache
// (nil re-solves every round).
func EliminateDeadCodeWith(p *il.Proc, ac *analysis.Cache) int {
	total := 0
	for {
		n := dceOnce(p, ac)
		total += n
		if n == 0 {
			return total
		}
	}
}

func dceOnce(p *il.Proc, ac *analysis.Cache) int {
	a, lv, err := ac.DataflowLiveness(p)
	if err != nil {
		return 0
	}
	needed := markNeededDefs(p, a)
	removed := 0
	var clean func([]il.Stmt) []il.Stmt
	clean = func(list []il.Stmt) []il.Stmt {
		out := list[:0] // in place: write index never passes read index
		for _, s := range list {
			switch n := s.(type) {
			case *il.Assign:
				if dst, ok := n.Dst.(*il.VarRef); ok {
					dead := !lv.LiveOut(s, dst.ID) || !needed[s]
					v := &p.Vars[dst.ID]
					if dead && !v.IsVolatile() && !p.HasVolatile(n.Src) {
						removed++
						continue
					}
				}
			case *il.If:
				n.Then = clean(n.Then)
				n.Else = clean(n.Else)
				if len(n.Then) == 0 && len(n.Else) == 0 && !p.HasVolatile(n.Cond) {
					removed++
					continue
				}
			case *il.While:
				n.Body = clean(n.Body)
			case *il.DoLoop:
				n.Body = clean(n.Body)
				if len(n.Body) == 0 && !lv.LiveOut(s, n.IV) {
					removed++
					continue
				}
			case *il.DoParallel:
				n.Body = clean(n.Body)
				if len(n.Body) == 0 && !lv.LiveOut(s, n.IV) {
					removed++
					continue
				}
			}
			out = append(out, s)
		}
		return out
	}
	p.Body = clean(p.Body)
	return p.Changed(removed)
}

// markNeededDefs runs the mark phase of mark-sweep dead-code elimination:
// essential statements (calls, stores, returns, control conditions, writes
// to externally visible variables) seed a worklist, and every definition
// transitively feeding an essential use is marked. Pure assignments whose
// statement never gets marked are dead even when they feed themselves in a
// cycle (i = i + 1 with no other use).
func markNeededDefs(p *il.Proc, a *dataflow.Analysis) map[il.Stmt]bool {
	essential := func(s il.Stmt) bool {
		switch n := s.(type) {
		case *il.Call, *il.Return, *il.PredAssign, *il.VectorAssign, *il.If, *il.While,
			*il.DoLoop, *il.DoParallel, *il.Goto, *il.Label:
			return true
		case *il.Assign:
			if il.IsStore(s) {
				return true
			}
			dst := n.Dst.(*il.VarRef)
			v := &p.Vars[dst.ID]
			if v.IsVolatile() || v.Class == il.ClassGlobal || v.Class == il.ClassStatic || v.AddrTaken {
				return true
			}
			return p.HasVolatile(n.Src)
		}
		return false
	}

	marked := map[il.Stmt]bool{}
	var work []il.Stmt
	need := func(s il.Stmt) {
		if s != nil && !marked[s] {
			marked[s] = true
			work = append(work, s)
		}
	}
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if essential(s) {
			need(s)
		}
		return true
	})
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		for _, v := range dataflow.UsedVars(s) {
			a.ForEachReachingDef(s, v, func(d *dataflow.Def) {
				need(d.Node.Stmt)
			})
		}
	}
	return marked
}

// PropagateCopies replaces uses of a variable with the source of a copy
// assignment `v = w`, `v = &x`, or `v = <pure expression>` when that copy
// is available on every path (the classic available-copies dataflow,
// extended to forward propagation of load-free expressions — the paper's
// "propagating address constants", which is safe because strength
// reduction and subexpression elimination undo any recomputation it
// introduces, §11). Returns the number of rewrites performed.
func PropagateCopies(p *il.Proc) int { return PropagateCopiesWith(p, nil) }

// PropagateCopiesWith is PropagateCopies against an analysis cache (nil
// re-solves every round).
func PropagateCopiesWith(p *il.Proc, ac *analysis.Cache) int {
	total := 0
	for {
		n := copyPropOnce(p, ac)
		total += n
		if n == 0 {
			return total
		}
	}
}

// copy instance: statement assigning v = <pure expr>.
type copyInst struct {
	stmt    *il.Assign
	dst     il.VarID
	src     il.Expr
	srcVars []il.VarID
}

// copyExprLimit bounds the size of propagated expressions.
const copyExprLimit = 16

func copyPropOnce(p *il.Proc, ac *analysis.Cache) int {
	a, err := ac.Dataflow(p)
	if err != nil {
		return 0
	}
	g := a.Graph
	ar := p.Arena()

	// Collect copy instances: pure, load-free, volatile-free sources of
	// bounded size that do not reference their own destination.
	var copies []copyInst
	copyIdx := map[il.Stmt]int{}
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		as, ok := s.(*il.Assign)
		if !ok {
			return true
		}
		dst, ok := as.Dst.(*il.VarRef)
		if !ok || p.Vars[dst.ID].IsVolatile() {
			return true
		}
		nodes := 0
		pure := true
		var srcVars []il.VarID
		il.WalkExpr(as.Src, func(x il.Expr) bool {
			nodes++
			switch n := x.(type) {
			case *il.Load:
				pure = false
			case *il.VarRef:
				if p.Vars[n.ID].IsVolatile() || n.ID == dst.ID {
					pure = false
				}
				srcVars = append(srcVars, n.ID)
			}
			return pure
		})
		if !pure || nodes > copyExprLimit {
			return true
		}
		copyIdx[s] = len(copies)
		copies = append(copies, copyInst{as, dst.ID, as.Src, srcVars})
		return true
	})
	if len(copies) == 0 {
		return 0
	}

	// killByVar[v] is the set of copies invalidated by a definition of v
	// (v is their destination or a source operand); clobberKill is its
	// union over the clobberable (address-taken/global/static) variables.
	// copiesByDst[v] lists v's copies in copy-index order.
	nCopies := len(copies)
	killByVar := make([]cpset, len(p.Vars))
	copiesByDst := make([][]int, len(p.Vars))
	killsOf := func(v il.VarID) cpset {
		if killByVar[v] == nil {
			killByVar[v] = newCpset(nCopies)
		}
		return killByVar[v]
	}
	for ci := range copies {
		c := &copies[ci]
		killsOf(c.dst).set(ci)
		copiesByDst[c.dst] = append(copiesByDst[c.dst], ci)
		for _, sv := range c.srcVars {
			killsOf(sv).set(ci)
		}
	}
	clobberKill := newCpset(nCopies)
	for i := range p.Vars {
		v := &p.Vars[i]
		if (v.AddrTaken || v.Class == il.ClassGlobal || v.Class == il.ClassStatic) &&
			killByVar[i] != nil {
			clobberKill.or(killByVar[i])
		}
	}

	// gen/kill bitsets over copies.
	nNodes := len(g.Nodes)
	gen := newCpsetSlab(nNodes, nCopies)
	kill := newCpsetSlab(nNodes, nCopies)
	for id, n := range g.Nodes {
		if s := n.Stmt; s != nil {
			if dv := il.DefinedVar(s); dv != il.NoVar && killByVar[dv] != nil {
				kill[id].or(killByVar[dv])
			}
			clobbers := false
			switch s.(type) {
			case *il.Call, *il.VectorAssign:
				clobbers = true
			case *il.Assign:
				clobbers = il.IsStore(s)
			}
			if clobbers {
				kill[id].or(clobberKill)
			}
			if ci, ok := copyIdx[s]; ok {
				// gen is applied after kill, so the copy survives its own
				// destination-kill (a copy never defines its source).
				gen[id].set(ci)
			}
		}
		if n.IVDef != il.NoVar && killByVar[n.IVDef] != nil {
			kill[id].or(killByVar[n.IVDef])
		}
	}

	// Forward must-analysis: in[n] = ∩ out[preds]; entry = ∅. Non-entry
	// nodes start at ⊤ (all copies); the Gauss–Seidel sweep converges to
	// the same greatest fixpoint the map-based sets produced.
	in := newCpsetSlab(nNodes, nCopies)
	out := newCpsetSlab(nNodes, nCopies)
	reach := g.Reachable()
	all := newCpset(nCopies)
	for i := 0; i < nCopies; i++ {
		all.set(i)
	}
	for i := 0; i < nNodes; i++ {
		if i != g.Entry {
			copy(in[i], all)
			copy(out[i], all)
		}
	}
	inScratch := newCpset(nCopies)
	outScratch := newCpset(nCopies)
	changed := true
	for changed {
		changed = false
		for id, n := range g.Nodes {
			if !reach[id] || id == g.Entry {
				continue
			}
			first := true
			for _, pr := range n.Preds {
				if !reach[pr] {
					continue
				}
				if first {
					copy(inScratch, out[pr])
					first = false
				} else {
					inScratch.and(out[pr])
				}
			}
			if first {
				inScratch.clear()
			}
			copy(outScratch, inScratch)
			outScratch.andNot(kill[id])
			outScratch.or(gen[id])
			if !inScratch.equal(in[id]) || !outScratch.equal(out[id]) {
				copy(in[id], inScratch)
				copy(out[id], outScratch)
				changed = true
			}
		}
	}

	// Rewrite uses with available copies.
	rewrites := 0
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		node, ok := g.NodeOf[s]
		if !ok || !reach[node.ID] {
			return true
		}
		avail := in[node.ID]
		replace := func(x il.Expr) il.Expr {
			v, ok := x.(*il.VarRef)
			if !ok {
				return x
			}
			// Iterate in copy-index order for determinism when several
			// copies of the same destination are available.
			for _, ci := range copiesByDst[v.ID] {
				if avail.get(ci) && copies[ci].stmt != s {
					rewrites++
					return il.CloneExprIn(ar, copies[ci].src)
				}
			}
			return x
		}
		switch n := s.(type) {
		case *il.Assign:
			if ld, ok := n.Dst.(*il.Load); ok {
				ld.Addr = il.RewriteExprIn(ar, ld.Addr, replace)
			}
			n.Src = il.RewriteExprIn(ar, n.Src, replace)
		default:
			il.RewriteStmtExprsIn(ar, s, replace)
		}
		return true
	})
	return p.Changed(rewrites)
}

// cpset is a bitset over copy indices, carved from a shared slab.
type cpset []uint64

func newCpset(n int) cpset { return make(cpset, (n+63)/64) }

func (b cpset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b cpset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b cpset) or(o cpset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b cpset) and(o cpset) {
	for i := range b {
		b[i] &= o[i]
	}
}

func (b cpset) andNot(o cpset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

func (b cpset) clear() {
	for i := range b {
		b[i] = 0
	}
}

func (b cpset) equal(o cpset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// newCpsetSlab carves n sets of the given width from one backing
// allocation (capped sub-slices, so growth cannot clobber a neighbor).
func newCpsetSlab(n, width int) []cpset {
	words := (width + 63) / 64
	backing := make([]uint64, n*words)
	out := make([]cpset, n)
	for i := range out {
		out[i] = cpset(backing[i*words : (i+1)*words : (i+1)*words])
	}
	return out
}
