package opt

import (
	"strconv"

	"repro/internal/ctype"
	"repro/internal/diag"
	"repro/internal/il"
)

// SubstituteInductionVariables performs §5.3's induction-variable
// substitution on every DO loop: auxiliary induction variables (variables
// advanced by a loop-invariant amount each iteration, including the
// pointer-bump temps the front end emits for *a++) are rewritten into
// closed form over the loop's iteration count, and pure assignments are
// forward-substituted into later statements with the paper's
// blocking/backtracking bookkeeping — a statement rejected only because a
// later statement redefines one of its operands is re-examined when the
// blocker is itself rewritten. Returns the number of rewrites performed.
func SubstituteInductionVariables(p *il.Proc) int {
	return ivsubProc(p, true, nil)
}

// SubstituteInductionVariablesSimple is the A2 ablation: recurrence
// detection does not resolve through the front end's temp copies and only
// one substitution pass runs, which is the "straightforward technique"
// §5.3 says cannot handle the translated *a++ loop.
func SubstituteInductionVariablesSimple(p *il.Proc) int {
	return ivsubProc(p, false, nil)
}

func ivsubProc(p *il.Proc, full bool, em *emitter) int {
	changed := 0
	p.Body = ivsubList(p, p.Body, full, &changed, em)
	return p.Changed(changed)
}

// ivsubList processes loops innermost-first, splicing preheader statements
// before rewritten loops.
func ivsubList(p *il.Proc, list []il.Stmt, full bool, changed *int, em *emitter) []il.Stmt {
	out := make([]il.Stmt, 0, len(list))
	for _, s := range list {
		switch n := s.(type) {
		case *il.If:
			n.Then = ivsubList(p, n.Then, full, changed, em)
			n.Else = ivsubList(p, n.Else, full, changed, em)
		case *il.While:
			n.Body = ivsubList(p, n.Body, full, changed, em)
		case *il.DoLoop:
			n.Body = ivsubList(p, n.Body, full, changed, em)
			pre := ivsubLoop(p, n, full, changed, em)
			out = append(out, pre...)
		case *il.DoParallel:
			n.Body = ivsubList(p, n.Body, full, changed, em)
		}
		out = append(out, s)
	}
	return out
}

// ivLimit bounds the substitution passes: n passes worst case (§5.3).
func ivLimit(body []il.Stmt) int { return len(body) + 2 }

// ivsubLoop rewrites one DO loop, returning preheader statements to place
// before it. Preheader statements inherit the loop's source position so
// later diagnostics on them never print a zero position.
func ivsubLoop(p *il.Proc, loop *il.DoLoop, full bool, changed *int, em *emitter) []il.Stmt {
	var pre []il.Stmt
	passes := ivLimit(loop.Body)
	if !full {
		passes = 1
	}
	loopTotal := 0
	for pass := 0; pass < passes; pass++ {
		n := 0
		pre = append(pre, closedFormPass(p, loop, full, &n)...)
		n += forwardSubstPass(p, loop, !full, em)
		*changed += n
		loopTotal += n
		if n == 0 {
			break
		}
	}
	il.StampStmts(pre, loop.Pos)
	if loopTotal > 0 {
		em.remark(diag.IVSubstituted, "ivsub", loop.Pos,
			map[string]string{"rewrites": strconv.Itoa(loopTotal)},
			"auxiliary induction variables rewritten into closed form over the loop index (§5.3)")
	}
	return pre
}

// kExpr returns the loop's iteration-index expression (0, 1, 2, ...) and
// any preheader statements needed to snapshot a varying Init.
func kExpr(p *il.Proc, loop *il.DoLoop) (il.Expr, []il.Stmt) {
	stepC, _ := il.IsIntConst(loop.Step)
	ivRef := il.Ref(loop.IV, ctype.IntType)
	var pre []il.Stmt

	init := loop.Init
	if !exprInvariantInBody(p, loop.Body, init) {
		// Init is evaluated once at entry; snapshot it so the closed forms
		// can refer to it even though the body changes its variables.
		t := p.NewTemp(ctype.IntType)
		pre = append(pre, &il.Assign{Dst: il.Ref(t, ctype.IntType), Src: il.CloneExpr(init)})
		loop.Init = il.Ref(t, ctype.IntType)
		init = loop.Init
	}
	switch stepC {
	case 1:
		return il.Sub(ivRef, il.CloneExpr(init), ctype.IntType), pre
	case -1:
		return il.Sub(il.CloneExpr(init), ivRef, ctype.IntType), pre
	default:
		diff := il.Sub(ivRef, il.CloneExpr(init), ctype.IntType)
		return il.NewBin(il.OpDiv, diff, il.CloneExpr(loop.Step), ctype.IntType), pre
	}
}

// exprInvariantInBody reports whether no variable of e is defined in body.
func exprInvariantInBody(p *il.Proc, body []il.Stmt, e il.Expr) bool {
	defined := bodyDefinedVars(p, body)
	inv := true
	il.WalkExpr(e, func(x il.Expr) bool {
		if v, ok := x.(*il.VarRef); ok {
			if defined[v.ID] || p.Vars[v.ID].IsVolatile() {
				inv = false
			}
		}
		return inv
	})
	return inv
}

// bodyDefinedVars returns every variable possibly defined in body
// (explicit defs plus clobbers by stores and calls).
func bodyDefinedVars(p *il.Proc, body []il.Stmt) map[il.VarID]bool {
	defined := map[il.VarID]bool{}
	clobber := func() {
		for i := range p.Vars {
			v := &p.Vars[i]
			if v.AddrTaken || v.Class == il.ClassGlobal || v.Class == il.ClassStatic {
				defined[il.VarID(i)] = true
			}
		}
	}
	il.WalkStmts(body, func(s il.Stmt) bool {
		if dv := il.DefinedVar(s); dv != il.NoVar {
			defined[dv] = true
		}
		if il.IsStore(s) {
			clobber()
		}
		switch n := s.(type) {
		case *il.Call:
			clobber()
		case *il.DoLoop:
			defined[n.IV] = true
		case *il.DoParallel:
			defined[n.IV] = true
		}
		return true
	})
	return defined
}

// basicIV is a detected auxiliary induction variable.
type basicIV struct {
	v      il.VarID
	step   il.Expr // loop-invariant per-iteration increment
	update int     // top-level index of the (single) updating statement
}

// detectBasicIVs finds variables with a single top-level update whose net
// per-iteration effect is v += step. When resolveCopies is set, the
// recurrence is resolved through the body's temp copies by symbolic
// execution (the §5.3 requirement for front-end-generated code).
func detectBasicIVs(p *il.Proc, loop *il.DoLoop, resolveCopies bool) []basicIV {
	// One pass of symbolic execution over the top-level statements.
	env := newSymEnv()
	ok := true
	for _, s := range loop.Body {
		if !env.exec(p, s) {
			ok = false
			break
		}
	}
	if !ok {
		return nil
	}

	// Count updates per variable and record the top-level index.
	updateIdx := map[il.VarID][]int{}
	for i, s := range loop.Body {
		if as, ok := s.(*il.Assign); ok {
			if dst, ok := as.Dst.(*il.VarRef); ok {
				updateIdx[dst.ID] = append(updateIdx[dst.ID], i)
			}
		}
	}
	// Nested defs disqualify.
	nestedDefs := map[il.VarID]bool{}
	for _, s := range loop.Body {
		switch s.(type) {
		case *il.Assign:
		default:
			il.WalkStmts([]il.Stmt{s}, func(sub il.Stmt) bool {
				if dv := il.DefinedVar(sub); dv != il.NoVar {
					nestedDefs[dv] = true
				}
				return true
			})
		}
	}

	// Deterministic order: iterate candidates by variable id, not map
	// order (temp names and golden output depend on it).
	var cands []il.VarID
	for vid := range updateIdx {
		cands = append(cands, vid)
	}
	sortVarIDs(cands)

	var out []basicIV
	for _, vid := range cands {
		idxs := updateIdx[vid]
		if len(idxs) != 1 || nestedDefs[vid] || vid == loop.IV {
			continue
		}
		v := &p.Vars[vid]
		if v.AddrTaken || v.Class == il.ClassGlobal || v.Class == il.ClassStatic || v.IsVolatile() {
			continue
		}
		if !v.Type.IsInteger() && v.Type.Kind != ctype.Pointer {
			continue
		}
		var next il.Expr
		if resolveCopies {
			var has bool
			next, has = env.vals[vid]
			if !has {
				continue
			}
		} else {
			// Straightforward technique: the update must literally read
			// v = v ± c.
			as := loop.Body[idxs[0]].(*il.Assign)
			next = as.Src
		}
		step, ok := matchRecurrence(il.CloneExpr(next), vid)
		if !ok || !exprInvariantInBody(p, loop.Body, step) {
			continue
		}
		out = append(out, basicIV{v: vid, step: step, update: idxs[0]})
	}
	return out
}

// closedFormPass replaces uses of each auxiliary IV with its closed form
// v0 + step*k (before the update) or v0 + step*(k+1) (after), where v0
// snapshots the variable at loop entry. Returns preheader statements.
func closedFormPass(p *il.Proc, loop *il.DoLoop, resolveCopies bool, changed *int) []il.Stmt {
	ivs := detectBasicIVs(p, loop, resolveCopies)
	if len(ivs) == 0 {
		return nil
	}
	k, pre := kExpr(p, loop)

	for _, biv := range ivs {
		t := p.Vars[biv.v].Type
		v0 := p.AddVar(il.Var{Name: p.Vars[biv.v].Name + ".0", Type: t, Class: il.ClassTemp})
		pre = append(pre, &il.Assign{Dst: il.Ref(v0, t), Src: il.Ref(biv.v, t)})

		valueAt := func(afterUpdate bool) il.Expr {
			occ := il.CloneExpr(k)
			if afterUpdate {
				occ = il.Add(occ, il.Int(1), ctype.IntType)
			}
			return il.Add(il.Ref(v0, t), il.Mul(il.CloneExpr(biv.step), occ, ctype.IntType), t)
		}

		for i, s := range loop.Body {
			after := i > biv.update
			if i == biv.update {
				// The update's RHS reads the before-update value; its
				// destination stays v so the variable remains correct for
				// any use after the loop.
				as := s.(*il.Assign)
				as.Src = il.RewriteExpr(as.Src, func(x il.Expr) il.Expr {
					if vr, ok := x.(*il.VarRef); ok && vr.ID == biv.v {
						*changed++
						return valueAt(false)
					}
					return x
				})
				continue
			}
			il.RewriteTreeExprs(s, func(x il.Expr) il.Expr {
				if vr, ok := x.(*il.VarRef); ok && vr.ID == biv.v {
					*changed++
					return valueAt(after)
				}
				return x
			})
		}
	}
	return pre
}

// forwardSubstPass forward-substitutes pure single-def assignments into
// later statements of the loop body, with the blocking bookkeeping of
// §5.3: when a substitution stops because statement B redefines one of the
// source's operands, the candidate is recorded as blocked by B; whenever a
// pass changes B (or deletes it), the blocked candidates are re-examined
// on the next pass. In strict mode (the "straightforward" A2 ablation) a
// blocking statement stops substitution before its own uses are rewritten,
// so the front end's pointer-bump pattern never resolves. Returns the
// number of substitutions.
func forwardSubstPass(p *il.Proc, loop *il.DoLoop, strict bool, em *emitter) int {
	changed := 0
	body := loop.Body
	defined := bodyDefinedVars(p, body)

	// Count defs per var at top level; vars with nested or multiple defs
	// are not candidates.
	defCount := map[il.VarID]int{}
	il.WalkStmts(body, func(s il.Stmt) bool {
		if dv := il.DefinedVar(s); dv != il.NoVar {
			defCount[dv]++
		}
		return true
	})

	for i, s := range body {
		as, ok := s.(*il.Assign)
		if !ok {
			continue
		}
		dst, ok := as.Dst.(*il.VarRef)
		if !ok || defCount[dst.ID] != 1 || dst.ID == loop.IV {
			continue
		}
		v := &p.Vars[dst.ID]
		if v.AddrTaken || v.IsVolatile() || v.Class == il.ClassGlobal || v.Class == il.ClassStatic {
			continue
		}
		if !pureNoLoad(as.Src) || il.UsesVar(as.Src, dst.ID) {
			continue
		}
		// Operand variables of the source.
		var operands []il.VarID
		il.WalkExpr(as.Src, func(x il.Expr) bool {
			if vr, ok := x.(*il.VarRef); ok {
				operands = append(operands, vr.ID)
			}
			return true
		})
		_ = defined

		// Scan forward, substituting until an operand is redefined.
		for j := i + 1; j < len(body); j++ {
			t := body[j]
			redefines := stmtMayDefine(p, t, operands)
			_, plain := t.(*il.Assign)
			if redefines && (strict || !plain) {
				// A structured statement that redefines an operand may
				// interleave the redefinition with uses of x; do not
				// substitute into it at all.
				em.remark(diag.IVBlocked, "ivsub", il.StmtPos(s),
					map[string]string{"var": v.Name, "blocker": t.String()},
					"forward substitution of %s blocked: a later statement redefines an operand (§5.3)", v.Name)
				break
			}
			il.RewriteTreeExprs(t, func(x il.Expr) il.Expr {
				if vr, ok := x.(*il.VarRef); ok && vr.ID == dst.ID {
					changed++
					return il.CloneExpr(as.Src)
				}
				return x
			})
			if redefines {
				// Blocked by t; §5.3's backtracking re-examines this
				// candidate on the next pass, after t has been rewritten.
				em.remark(diag.IVBlocked, "ivsub", il.StmtPos(s),
					map[string]string{"var": v.Name, "blocker": t.String()},
					"forward substitution of %s stopped at a redefining statement; will backtrack once the blocker is rewritten (§5.3)", v.Name)
				break
			}
		}
	}
	return changed
}

// sortVarIDs sorts ascending (insertion sort; candidate lists are tiny).
func sortVarIDs(a []il.VarID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// pureNoLoad reports whether e has no loads and no volatile references.
func pureNoLoad(e il.Expr) bool {
	pure := true
	il.WalkExpr(e, func(x il.Expr) bool {
		if _, ok := x.(*il.Load); ok {
			pure = false
		}
		return pure
	})
	return pure
}

// stmtMayDefine reports whether s (including nested statements) may define
// any of the given variables.
func stmtMayDefine(p *il.Proc, s il.Stmt, vars []il.VarID) bool {
	defined := bodyDefinedVars(p, []il.Stmt{s})
	for _, v := range vars {
		if defined[v] {
			return true
		}
	}
	return false
}
