package opt

import (
	"repro/internal/analysis"
	"repro/internal/ctype"
	"repro/internal/dataflow"
	"repro/internal/diag"
	"repro/internal/il"
)

// PropagateConstants performs constant propagation off the use-def graph,
// combined with the unreachable-code elimination of §8: when an if
// condition simplifies to a constant, the untaken branch is deleted, and
// the constant assignments whose definitions were blocked by the deleted
// code get another round of propagation (here, by iterating to a fixpoint,
// which subsumes the paper's re-queueing heuristic).
//
// It returns the number of rewrites performed.
func PropagateConstants(p *il.Proc) int { return PropagateConstantsWith(p, nil) }

// PropagateConstantsWith is PropagateConstants against an analysis cache
// (nil re-solves every round).
func PropagateConstantsWith(p *il.Proc, ac *analysis.Cache) int {
	return propagateConstants(p, ac, nil)
}

// propagateConstants is the emitter-threaded implementation: §8's
// unreachable-code deletions surface as const-unreachable-delete remarks.
func propagateConstants(p *il.Proc, ac *analysis.Cache, em *emitter) int {
	total := 0
	for {
		n := propagateOnce(p, ac, em)
		total += n
		if n == 0 {
			return total
		}
	}
}

func propagateOnce(p *il.Proc, ac *analysis.Cache, em *emitter) int {
	a, err := ac.Dataflow(p)
	if err != nil {
		return 0
	}
	changed := 0
	ar := p.Arena()

	// Substitute uses whose every reaching definition assigns the same
	// constant.
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		subst := func(e il.Expr) il.Expr {
			return il.RewriteExprIn(ar, e, func(x il.Expr) il.Expr {
				v, ok := x.(*il.VarRef)
				if !ok {
					return x
				}
				if c := constValueAt(p, ar, a, s, v.ID); c != nil {
					changed++
					return c
				}
				return x
			})
		}
		switch n := s.(type) {
		case *il.Assign:
			if ld, ok := n.Dst.(*il.Load); ok {
				ld.Addr = subst(ld.Addr)
			}
			n.Src = subst(n.Src)
		default:
			il.RewriteStmtExprsIn(ar, s, func(x il.Expr) il.Expr {
				if v, ok := x.(*il.VarRef); ok {
					if c := constValueAt(p, ar, a, s, v.ID); c != nil {
						changed++
						return c
					}
				}
				return x
			})
		}
		return true
	})

	// Fold expressions bottom-up. Folds are not counted toward the
	// propagation fixpoint (they cannot enable further substitutions on
	// their own), but they do rewrite uses, so they must invalidate any
	// cached liveness: foldNode preserves node identity on no-change
	// exactly so real folds are detectable here.
	folds := 0
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		il.RewriteStmtExprsIn(ar, s, func(e il.Expr) il.Expr {
			f := foldNode(ar, e)
			if f != e {
				folds++
			}
			return f
		})
		return true
	})

	// Simplify control flow on constant conditions (§8).
	p.Body = simplifyControl(p.Body, &changed, em)

	// Remove code made unreachable by unconditional transfers (§8's
	// vectorizer postpass).
	changed += postpassUnreachable(p, em)
	p.Changed(changed + folds)
	return changed
}

// constValueAt returns the constant value of v at statement s if every
// reaching definition is an unambiguous assignment of that same constant.
// The returned clone is allocated from ar.
func constValueAt(p *il.Proc, ar *il.Arena, a *dataflow.Analysis, s il.Stmt, v il.VarID) il.Expr {
	if p.Vars[v].IsVolatile() {
		return nil
	}
	var val il.Expr
	bad := false
	a.ForEachReachingDef(s, v, func(d *dataflow.Def) {
		if bad {
			return
		}
		if d.Ambiguous || d.Node.Stmt == nil {
			bad = true
			return
		}
		as, ok := d.Node.Stmt.(*il.Assign)
		if !ok {
			bad = true
			return
		}
		switch as.Src.(type) {
		case *il.ConstInt, *il.ConstFloat:
		default:
			bad = true
			return
		}
		if val == nil {
			val = as.Src
		} else if !il.ExprEqual(val, as.Src) {
			bad = true
		}
	})
	if bad || val == nil {
		return nil
	}
	return il.CloneExprIn(ar, val)
}

// foldNode rebuilds one expression node through the folding constructors,
// adding the float-comparison folding NewBin leaves alone. Rebuilt nodes
// come from ar; the constructors are only invoked when a fold or identity
// actually applies, so the nothing-to-fold path allocates nothing.
func foldNode(ar *il.Arena, e il.Expr) il.Expr {
	switch n := e.(type) {
	case *il.Bin:
		if n.Op.IsComparison() {
			if lf, ok := n.L.(*il.ConstFloat); ok {
				if rf, ok := n.R.(*il.ConstFloat); ok {
					if v, ok := il.FoldCompareFloat(n.Op, lf.Val, rf.Val); ok {
						return ar.ConstInt(v, ctype.IntType)
					}
				}
			}
		}
		// Keep the original node when nothing folds, so callers can detect
		// real rewrites by identity (SimplifyLinear already returns its
		// argument when nothing combines).
		var folded il.Expr = n
		if il.BinFoldable(n.Op, n.L, n.R, n.T) {
			folded = il.NewBinIn(ar, n.Op, n.L, n.R, n.T)
		}
		if b, stillBin := folded.(*il.Bin); stillBin {
			if b.Op == il.OpAdd || b.Op == il.OpSub {
				return il.SimplifyLinearIn(ar, folded)
			}
		}
		return folded
	case *il.Un:
		switch n.X.(type) {
		case *il.ConstInt, *il.ConstFloat:
			folded := il.NewUnIn(ar, n.Op, n.X, n.T)
			if u, still := folded.(*il.Un); still && u.Op == n.Op && u.X == n.X {
				return n
			}
			return folded
		}
		return n
	case *il.Cast:
		xt := n.X.Type()
		elide := xt != nil && xt.Kind == n.T.Kind && xt.Unsigned == n.T.Unsigned
		switch n.X.(type) {
		case *il.ConstInt, *il.ConstFloat:
		default:
			if !elide {
				return n
			}
		}
		folded := il.NewCastIn(ar, n.X, n.T)
		if c, still := folded.(*il.Cast); still && c.X == n.X {
			return n
		}
		return folded
	}
	return e
}

// simplifyControl deletes untaken branches of constant ifs and zero-trip
// loops, splicing the surviving statements in place.
func simplifyControl(list []il.Stmt, changed *int, em *emitter) []il.Stmt {
	out := make([]il.Stmt, 0, len(list))
	for _, s := range list {
		switch n := s.(type) {
		case *il.If:
			n.Then = simplifyControl(n.Then, changed, em)
			n.Else = simplifyControl(n.Else, changed, em)
			if c, ok := il.IsIntConst(n.Cond); ok {
				*changed++
				kept := "then"
				if c == 0 {
					kept = "else"
				}
				em.remark(diag.ConstUnreachableDelete, "constprop", n.Pos,
					map[string]string{"kept": kept},
					"condition is the constant %d; untaken branch deleted (§8)", c)
				if c != 0 {
					out = append(out, n.Then...)
				} else {
					out = append(out, n.Else...)
				}
				continue
			}
			if len(n.Then) == 0 && len(n.Else) == 0 {
				*changed++
				continue
			}
		case *il.While:
			n.Body = simplifyControl(n.Body, changed, em)
			if c, ok := il.IsIntConst(n.Cond); ok && c == 0 {
				*changed++
				em.remark(diag.ConstUnreachableDelete, "constprop", n.Pos, nil,
					"while condition is constant zero; loop deleted (§8)")
				continue
			}
		case *il.DoLoop:
			n.Body = simplifyControl(n.Body, changed, em)
			if zeroTrip(n.Init, n.Limit, n.Step) {
				*changed++
				em.remark(diag.ConstUnreachableDelete, "constprop", n.Pos, nil,
					"DO loop provably executes zero times; deleted (§8)")
				continue
			}
		case *il.DoParallel:
			n.Body = simplifyControl(n.Body, changed, em)
			if zeroTrip(n.Init, n.Limit, n.Step) {
				*changed++
				em.remark(diag.ConstUnreachableDelete, "constprop", n.Pos, nil,
					"parallel DO loop provably executes zero times; deleted (§8)")
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// zeroTrip reports whether a DO loop provably executes zero times.
func zeroTrip(init, limit, step il.Expr) bool {
	i, ok1 := il.IsIntConst(init)
	l, ok2 := il.IsIntConst(limit)
	s, ok3 := il.IsIntConst(step)
	if !ok1 || !ok2 || !ok3 || s == 0 {
		return false
	}
	if s > 0 {
		return i > l
	}
	return i < l
}

// postpassUnreachable removes statements that follow an unconditional
// control transfer up to the next label (§8: "code immediately following
// branches that are always taken is difficult to uncover as unreachable
// during constant propagation. The vectorizer has a separate postpass").
// It also deletes gotos that target the immediately following label.
func postpassUnreachable(p *il.Proc, em *emitter) int {
	removed := 0
	// clean removes dead statements; follow is the label that control
	// reaches immediately after the list ends (so trailing `goto follow`
	// statements are no-ops, even from inside an If arm).
	var clean func(list []il.Stmt, follow string) []il.Stmt
	clean = func(list []il.Stmt, follow string) []il.Stmt {
		// Filter in place: the write index never passes the read index
		// (each kept statement is appended at most once per consumed one).
		out := list[:0]
		dead := false
		for i, s := range list {
			if _, isLabel := s.(*il.Label); isLabel {
				dead = false
			}
			if dead {
				removed++
				em.remark(diag.ConstUnreachableDelete, "constprop", il.StmtPos(s), nil,
					"statement after an always-taken transfer is unreachable; deleted (§8 postpass)")
				continue
			}
			// The label control falls to after this statement.
			next := follow
			if i+1 < len(list) {
				if l, ok := list[i+1].(*il.Label); ok {
					next = l.Name
				} else {
					next = ""
				}
			}
			switch n := s.(type) {
			case *il.Goto:
				if n.Target == next {
					removed++
					continue
				}
				out = append(out, s)
				dead = true
				continue
			case *il.Return:
				out = append(out, s)
				dead = true
				continue
			case *il.If:
				n.Then = clean(n.Then, next)
				n.Else = clean(n.Else, next)
			case *il.While:
				n.Body = clean(n.Body, "")
			case *il.DoLoop:
				n.Body = clean(n.Body, "")
			case *il.DoParallel:
				n.Body = clean(n.Body, "")
			}
			out = append(out, s)
		}
		return out
	}
	p.Body = clean(p.Body, "")
	return removed
}

// RemoveUnusedLabels deletes labels that no goto targets. Run after the
// other passes so label bookkeeping does not block loop conversion.
func RemoveUnusedLabels(p *il.Proc) int {
	targets := map[string]bool{}
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if g, ok := s.(*il.Goto); ok {
			targets[g.Target] = true
		}
		return true
	})
	removed := 0
	var clean func([]il.Stmt) []il.Stmt
	clean = func(list []il.Stmt) []il.Stmt {
		out := list[:0] // in place: write index never passes read index
		for _, s := range list {
			if l, ok := s.(*il.Label); ok && !targets[l.Name] {
				removed++
				continue
			}
			switch n := s.(type) {
			case *il.If:
				n.Then = clean(n.Then)
				n.Else = clean(n.Else)
			case *il.While:
				n.Body = clean(n.Body)
			case *il.DoLoop:
				n.Body = clean(n.Body)
			case *il.DoParallel:
				n.Body = clean(n.Body)
			}
			out = append(out, s)
		}
		return out
	}
	p.Body = clean(p.Body)
	return p.Changed(removed)
}
