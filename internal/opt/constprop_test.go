package opt

import (
	"strings"
	"testing"

	"repro/internal/il"
)

func TestConstPropStraightLine(t *testing.T) {
	src := `
int f(void) {
	int a, b;
	a = 2;
	b = a + 3;
	return b;
}
`
	p := compileProc(t, src, "f")
	PropagateConstants(p)
	EliminateDeadCode(p)
	ret := lastReturn(t, p)
	if v, ok := il.IsIntConst(ret.Val); !ok || v != 5 {
		t.Errorf("return: %s\n%s", p.ExprString(ret.Val), p)
	}
}

func lastReturn(t *testing.T, p *il.Proc) *il.Return {
	t.Helper()
	var ret *il.Return
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if r, ok := s.(*il.Return); ok {
			ret = r
		}
		return true
	})
	if ret == nil {
		t.Fatalf("no return:\n%s", p)
	}
	return ret
}

func TestConstPropThroughIfJoin(t *testing.T) {
	// Same constant on both branches propagates past the join.
	src := `
int f(int c) {
	int a;
	if (c) a = 7; else a = 7;
	return a;
}
`
	p := compileProc(t, src, "f")
	PropagateConstants(p)
	ret := lastReturn(t, p)
	if v, ok := il.IsIntConst(ret.Val); !ok || v != 7 {
		t.Errorf("return: %s", p.ExprString(ret.Val))
	}
}

func TestNoPropDifferentConstants(t *testing.T) {
	src := `
int f(int c) {
	int a;
	if (c) a = 1; else a = 2;
	return a;
}
`
	p := compileProc(t, src, "f")
	PropagateConstants(p)
	ret := lastReturn(t, p)
	if _, ok := il.IsIntConst(ret.Val); ok {
		t.Error("merged different constants")
	}
}

func TestIfTrueEliminatesElse(t *testing.T) {
	src := `
int f(void) {
	int a, r;
	a = 1;
	if (a) r = 10; else r = 20;
	return r;
}
`
	p := compileProc(t, src, "f")
	PropagateConstants(p)
	// The If must be gone.
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if _, ok := s.(*il.If); ok {
			t.Errorf("If survived:\n%s", p)
		}
		return true
	})
	ret := lastReturn(t, p)
	if v, ok := il.IsIntConst(ret.Val); !ok || v != 10 {
		t.Errorf("return %s", p.ExprString(ret.Val))
	}
}

func TestUnreachableHeuristicCascade(t *testing.T) {
	// §8: eliminating the unreachable branch unblocks further propagation:
	// the constant a=1 was blocked by the (unreachable) a=2.
	src := `
int f(void) {
	int c, a, r;
	c = 0;
	a = 1;
	if (c) a = 2;
	r = a + 1;
	return r;
}
`
	p := compileProc(t, src, "f")
	PropagateConstants(p)
	ret := lastReturn(t, p)
	if v, ok := il.IsIntConst(ret.Val); !ok || v != 2 {
		t.Errorf("cascade failed: return %s\n%s", p.ExprString(ret.Val), p)
	}
}

func TestPaperInlinedDaxpyGuard(t *testing.T) {
	// §8's example: after inlining daxpy(x, y, 0.0, z), constant
	// propagation proves in_a == 0.0 and the body is unreachable.
	src := `
void f(float *x, float y, float z) {
	float in_y, in_a, in_z;
	float *in_x;
	in_x = x;
	in_y = y;
	in_a = 0.0;
	in_z = z;
	if (in_a == 0.0) goto lb_1;
	*in_x = in_y + in_a * in_z;
lb_1: ;
}
`
	p := compileProc(t, src, "f")
	before := il.CountStmts(p.Body)
	PropagateConstants(p)
	RemoveUnusedLabels(p)
	EliminateDeadCode(p)
	after := il.CountStmts(p.Body)
	// The store must be gone.
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if il.IsStore(s) {
			t.Errorf("floating point assignment survived:\n%s", p)
		}
		return true
	})
	if after >= before {
		t.Errorf("no shrink: %d -> %d", before, after)
	}
}

func TestZeroTripLoopRemoved(t *testing.T) {
	src := `
void f(float *x) {
	int i;
	for (i = 0; i < 0; i++) x[i] = 0;
}
`
	p := compileProc(t, src, "f")
	ConvertWhileLoops(p)
	PropagateConstants(p)
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		switch s.(type) {
		case *il.DoLoop, *il.While:
			t.Errorf("zero-trip loop survived:\n%s", p)
		}
		return true
	})
}

func TestWhileFalseRemoved(t *testing.T) {
	src := "void f(float *x) { while (0) *x = 1; }"
	p := compileProc(t, src, "f")
	PropagateConstants(p)
	if len(p.Body) != 0 {
		t.Errorf("while(0) survived:\n%s", p)
	}
}

func TestVolatileNotPropagated(t *testing.T) {
	// §1/§3: volatile variables must not be constant-propagated, even
	// when the only visible assignment stores a constant.
	src := `
volatile int ks;
int f(void) {
	ks = 0;
	return ks;
}
`
	p := compileProc(t, src, "f")
	PropagateConstants(p)
	ret := lastReturn(t, p)
	if _, ok := il.IsIntConst(ret.Val); ok {
		t.Errorf("volatile read replaced by constant:\n%s", p)
	}
}

func TestVolatileStoreNotDCEd(t *testing.T) {
	src := `
volatile int ks;
void f(void) { ks = 0; }
`
	p := compileProc(t, src, "f")
	EliminateDeadCode(p)
	if len(p.Body) != 1 {
		t.Errorf("volatile store removed:\n%s", p)
	}
}

func TestDCERemovesDeadTemp(t *testing.T) {
	src := `
int f(int a) {
	int unused;
	unused = a * 3;
	return a;
}
`
	p := compileProc(t, src, "f")
	EliminateDeadCode(p)
	if len(p.Body) != 1 {
		t.Errorf("dead assign survived:\n%s", p)
	}
}

func TestDCEKeepsLiveChain(t *testing.T) {
	src := `
int f(int a) {
	int x, y;
	x = a + 1;
	y = x + 1;
	return y;
}
`
	p := compileProc(t, src, "f")
	EliminateDeadCode(p)
	if len(p.Body) != 3 {
		t.Errorf("live chain damaged:\n%s", p)
	}
}

func TestDCEKeepsStores(t *testing.T) {
	src := "void f(float *p) { *p = 1; }"
	p := compileProc(t, src, "f")
	EliminateDeadCode(p)
	if len(p.Body) != 1 {
		t.Errorf("store removed:\n%s", p)
	}
}

func TestDCEDeadLoopTempsAfterIVSub(t *testing.T) {
	// After manual closed-forming, the temp chain is dead.
	src := `
void f(int n) {
	int i, t;
	for (i = 0; i < n; i++) {
		t = i * 4;
	}
}
`
	p := compileProc(t, src, "f")
	ConvertWhileLoops(p)
	EliminateDeadCode(p)
	// t's assignment is dead; then i's update is dead (only used by
	// itself); loop body empties and the DoLoop disappears.
	left := 0
	il.WalkStmts(p.Body, func(s il.Stmt) bool { left++; return true })
	if left > 2 {
		t.Errorf("%d statements left:\n%s", left, p)
	}
}

func TestCopyPropSimple(t *testing.T) {
	src := `
int g(int);
int f(int a) {
	int b, r;
	b = a;
	r = g(b);
	return r;
}
`
	p := compileProc(t, src, "f")
	PropagateCopies(p)
	var call *il.Call
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if c, ok := s.(*il.Call); ok {
			call = c
		}
		return true
	})
	arg := call.Args[0].(*il.VarRef)
	if p.Vars[arg.ID].Name != "a" {
		t.Errorf("arg is %s, want a\n%s", p.Vars[arg.ID].Name, p)
	}
}

func TestCopyPropBlockedByRedefinition(t *testing.T) {
	src := `
int f(int a) {
	int b, r;
	b = a;
	a = 99;
	r = b;
	return r;
}
`
	p := compileProc(t, src, "f")
	PropagateCopies(p)
	// r = b must NOT become r = a.
	as := p.Body[2].(*il.Assign)
	v, ok := as.Src.(*il.VarRef)
	if !ok || p.Vars[v.ID].Name != "b" {
		t.Errorf("unsound copy prop: %s", p.StmtString(as, 0))
	}
}

func TestCopyPropUnsoundLoopCase(t *testing.T) {
	// The loop case that breaks naive reaching-def comparison:
	//   loop { b = w; w = f(); use b }
	// b's use must not become w (w changed in between).
	src := `
int w;
int f2(void);
int f(int n) {
	int b, r;
	r = 0;
	while (n) {
		b = w;
		w = f2();
		r = r + b;
		n = n - 1;
	}
	return r;
}
`
	p := compileProc(t, src, "f")
	PropagateCopies(p)
	// find r = r + b
	found := false
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		as, ok := s.(*il.Assign)
		if !ok {
			return true
		}
		if b, ok := as.Src.(*il.Bin); ok && b.Op == il.OpAdd {
			if v, ok := b.R.(*il.VarRef); ok {
				found = true
				if p.Vars[v.ID].Name == "w" {
					t.Errorf("unsound: b replaced by w inside loop\n%s", p)
				}
			}
		}
		return true
	})
	if !found {
		t.Fatalf("pattern not found:\n%s", p)
	}
}

func TestCopyPropAddress(t *testing.T) {
	// The inlining pattern: in_x = &a; ... *in_x — the address copy
	// propagates into the load.
	src := `
float a[10];
float f(void) {
	float *in_x;
	in_x = &a[0];
	return *in_x;
}
`
	p := compileProc(t, src, "f")
	PropagateCopies(p)
	EliminateDeadCode(p)
	ret := lastReturn(t, p)
	ld, ok := ret.Val.(*il.Load)
	if !ok {
		t.Fatalf("return: %T", ret.Val)
	}
	if strings.Contains(p.ExprString(ld.Addr), "in_x") {
		t.Errorf("address copy not propagated: %s", p.ExprString(ld.Addr))
	}
}

func TestPostpassRemovesCodeAfterGoto(t *testing.T) {
	src := `
int f(int c) {
	if (c) goto out;
	goto out;
	c = c + 1;
	c = c + 2;
out:
	return c;
}
`
	p := compileProc(t, src, "f")
	PropagateConstants(p)
	adds := 0
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if as, ok := s.(*il.Assign); ok {
			if _, ok := as.Src.(*il.Bin); ok {
				adds++
			}
		}
		return true
	})
	if adds != 0 {
		t.Errorf("unreachable code survived (%d stmts):\n%s", adds, p)
	}
}

func TestGotoToNextLabelRemoved(t *testing.T) {
	src := `
int f(int c) {
	if (c) goto out;
out:
	return c;
}
`
	p := compileProc(t, src, "f")
	PropagateConstants(p)
	RemoveUnusedLabels(p)
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		switch s.(type) {
		case *il.Goto, *il.Label:
			t.Errorf("redundant goto/label survived:\n%s", p)
		}
		return true
	})
}

func TestConstPropFloatCompare(t *testing.T) {
	src := `
int f(void) {
	float a;
	a = 0.0f;
	if (a == 0.0f) return 1;
	return 2;
}
`
	p := compileProc(t, src, "f")
	PropagateConstants(p)
	EliminateDeadCode(p)
	ret, ok := p.Body[0].(*il.Return)
	if !ok {
		t.Fatalf("stmt 0: %T\n%s", p.Body[0], p)
	}
	if v, _ := il.IsIntConst(ret.Val); v != 1 {
		t.Errorf("return %s", p.ExprString(ret.Val))
	}
}

func TestConstPropIntoLoopBounds(t *testing.T) {
	// §5.2: graphics code with 4x4 matrices — knowing the vector length at
	// compile time requires propagating the bound into the DO header.
	src := `
float m[4];
void f(void) {
	int i, n;
	n = 4;
	for (i = 0; i < n; i++) m[i] = 0;
}
`
	p := compileProc(t, src, "f")
	ConvertWhileLoops(p)
	PropagateConstants(p)
	d := firstDoLoop(p.Body)
	if d == nil {
		t.Fatalf("no DoLoop:\n%s", p)
	}
	if v, ok := il.IsIntConst(d.Limit); !ok || v != 3 {
		t.Errorf("limit: %s (want 3)", p.ExprString(d.Limit))
	}
	if v, ok := il.IsIntConst(d.Init); !ok || v != 0 {
		t.Errorf("init: %s (want 0)", p.ExprString(d.Init))
	}
}
