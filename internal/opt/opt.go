package opt

import "repro/internal/il"

// Options selects which scalar optimizations run.
type Options struct {
	// IVSub enables induction-variable substitution. The paper notes it
	// deoptimizes code that does not vectorize (§6), so the driver turns
	// it on when vectorization is requested and relies on strength
	// reduction to undo the damage elsewhere.
	IVSub bool
	// SimpleIVSub selects the single-pass, no-copy-resolution variant
	// (ablation A2).
	SimpleIVSub bool
	// NoCopyProp disables copy propagation. Combined with SimpleIVSub it
	// models the "straightforward" 1980s pipeline of §5.3 that cannot
	// resolve the front end's pointer-bump temporaries.
	NoCopyProp bool
	// NoWhileConversion disables while→DO conversion (for ablations).
	NoWhileConversion bool
}

// DefaultOptions enables the full paper pipeline.
func DefaultOptions() Options { return Options{IVSub: true} }

// Optimize runs the scalar optimization pipeline on one procedure in the
// paper's order (§5.2): use-def chains are built first (inside each pass),
// while loops convert to DO loops immediately, and only then do the
// DO-loop simplifications — induction-variable substitution, constant
// propagation, and dead-code elimination — run. The pipeline iterates to a
// bounded fixpoint since each pass exposes opportunities for the others.
func Optimize(p *il.Proc, opts Options) {
	for round := 0; round < 8; round++ {
		changed := 0
		if !opts.NoWhileConversion {
			changed += ConvertWhileLoops(p)
		}
		changed += PropagateConstants(p)
		if opts.IVSub {
			if opts.SimpleIVSub {
				changed += SubstituteInductionVariablesSimple(p)
			} else {
				changed += SubstituteInductionVariables(p)
			}
		}
		if !opts.NoCopyProp {
			changed += PropagateCopies(p)
		}
		changed += PropagateConstants(p)
		changed += EliminateDeadCode(p)
		changed += RemoveUnusedLabels(p)
		if changed == 0 {
			return
		}
	}
}

// OptimizeProgram runs Optimize over every procedure.
func OptimizeProgram(prog *il.Program, opts Options) {
	for _, p := range prog.Procs {
		Optimize(p, opts)
	}
}
