package opt

import (
	"repro/internal/analysis"
	"repro/internal/diag"
	"repro/internal/il"
)

// Options selects which scalar optimizations run.
type Options struct {
	// IVSub enables induction-variable substitution. The paper notes it
	// deoptimizes code that does not vectorize (§6), so the driver turns
	// it on when vectorization is requested and relies on strength
	// reduction to undo the damage elsewhere.
	IVSub bool
	// SimpleIVSub selects the single-pass, no-copy-resolution variant
	// (ablation A2).
	SimpleIVSub bool
	// NoCopyProp disables copy propagation. Combined with SimpleIVSub it
	// models the "straightforward" 1980s pipeline of §5.3 that cannot
	// resolve the front end's pointer-bump temporaries.
	NoCopyProp bool
	// NoWhileConversion disables while→DO conversion (for ablations).
	NoWhileConversion bool
}

// DefaultOptions enables the full paper pipeline.
func DefaultOptions() Options { return Options{IVSub: true} }

// SubPass is one named step of the scalar optimizer. Run returns the
// number of changes it made to the procedure.
type SubPass struct {
	Name string
	Run  func(*il.Proc) int
}

// SubPasses returns the scalar sub-passes opts enables, in the paper's
// §5.2 order: while loops convert to DO loops immediately after use-def
// chains are available (each sub-pass builds its own), then the DO-loop
// simplifications — constant propagation, induction-variable
// substitution, copy propagation — and finally dead-code elimination.
// This slice is the single place the scalar phase order is written down;
// both the fixpoint driver below and the pass manager's snapshot and
// instrumentation layers consume it.
func SubPasses(opts Options) []SubPass { return SubPassesWith(opts, nil) }

// SubPassesWith is SubPasses with the sub-passes bound to an analysis
// cache; a nil cache re-solves every analysis (the uncached baseline).
func SubPassesWith(opts Options, ac *analysis.Cache) []SubPass {
	return subPassesDiag(opts, ac, nil)
}

// subPassesDiag builds the sub-pass list with each sub-pass reporting its
// decisions through em (nil reports nothing).
func subPassesDiag(opts Options, ac *analysis.Cache, em *emitter) []SubPass {
	constprop := func(p *il.Proc) int { return propagateConstants(p, ac, em) }
	var sp []SubPass
	if !opts.NoWhileConversion {
		sp = append(sp, SubPass{"while-to-do", func(p *il.Proc) int { return convertWhileLoops(p, ac, em) }})
	}
	sp = append(sp, SubPass{"constprop", constprop})
	if opts.IVSub {
		if opts.SimpleIVSub {
			sp = append(sp, SubPass{"ivsub-simple", func(p *il.Proc) int { return ivsubProc(p, false, em) }})
		} else {
			sp = append(sp, SubPass{"ivsub", func(p *il.Proc) int { return ivsubProc(p, true, em) }})
		}
	}
	if !opts.NoCopyProp {
		sp = append(sp, SubPass{"copyprop", func(p *il.Proc) int { return PropagateCopiesWith(p, ac) }})
	}
	sp = append(sp,
		SubPass{"constprop-after", constprop},
		SubPass{"dce", func(p *il.Proc) int { return EliminateDeadCodeWith(p, ac) }},
		SubPass{"unused-labels", RemoveUnusedLabels},
	)
	return sp
}

// FixpointCapped is the Counts key recording how many procedures hit
// maxRounds with changes still being made: the fixpoint was capped, not
// reached. Surfaced through pass.Report so non-convergence is visible
// instead of silently swallowed.
const FixpointCapped = "fixpoint-capped"

// maxRounds bounds the scalar fixpoint (each sub-pass exposes
// opportunities for the others, but convergence is usually immediate).
const maxRounds = 8

// Counts records, per sub-pass name, how many changes it made. Merging
// across procedures is a keywise sum, so the aggregate is deterministic
// regardless of the order procedures are optimized in.
type Counts map[string]int

// Add folds another procedure's counts into c.
func (c Counts) Add(o Counts) {
	for k, v := range o {
		c[k] += v
	}
}

// Optimize runs the scalar optimization pipeline on one procedure in the
// paper's order (§5.2); see SubPasses. The pipeline iterates to a bounded
// fixpoint since each sub-pass exposes opportunities for the others. The
// returned Counts report changes per sub-pass across all rounds.
func Optimize(p *il.Proc, opts Options) Counts {
	return OptimizeWith(p, opts, analysis.NewCache())
}

// OptimizeWith is Optimize against a caller-owned analysis cache. The
// final no-change rounds of the fixpoint — and any sub-pass that makes no
// changes in between — become cache hits instead of full re-solves. A nil
// cache re-solves everything (the uncached baseline).
func OptimizeWith(p *il.Proc, opts Options, ac *analysis.Cache) Counts {
	return optimize(p, opts, ac, nil)
}

func optimize(p *il.Proc, opts Options, ac *analysis.Cache, em *emitter) Counts {
	sub := subPassesDiag(opts, ac, em)
	counts := Counts{}
	for round := 0; round < maxRounds; round++ {
		changed := 0
		for _, s := range sub {
			n := s.Run(p)
			counts[s.Name] += n
			changed += n
		}
		if changed == 0 {
			break
		}
		if round == maxRounds-1 {
			counts[FixpointCapped]++
			em.warn(diag.FixpointCapped, "scalar-opt", procPos(p),
				"scalar optimizer hit the %d-round cap with changes still being made; results are valid but may not be fully propagated", maxRounds)
		}
	}
	return counts
}

// OptimizeProgram runs Optimize over every procedure and returns the
// merged counts.
func OptimizeProgram(prog *il.Program, opts Options) Counts {
	return OptimizeProgramWith(prog, opts, analysis.NewCache())
}

// OptimizeProgramWith runs OptimizeWith over every procedure with a
// shared cache and returns the merged counts.
func OptimizeProgramWith(prog *il.Program, opts Options, ac *analysis.Cache) Counts {
	counts := Counts{}
	for _, p := range prog.Procs {
		counts.Add(OptimizeWith(p, opts, ac))
	}
	return counts
}
