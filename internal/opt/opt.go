package opt

import "repro/internal/il"

// Options selects which scalar optimizations run.
type Options struct {
	// IVSub enables induction-variable substitution. The paper notes it
	// deoptimizes code that does not vectorize (§6), so the driver turns
	// it on when vectorization is requested and relies on strength
	// reduction to undo the damage elsewhere.
	IVSub bool
	// SimpleIVSub selects the single-pass, no-copy-resolution variant
	// (ablation A2).
	SimpleIVSub bool
	// NoCopyProp disables copy propagation. Combined with SimpleIVSub it
	// models the "straightforward" 1980s pipeline of §5.3 that cannot
	// resolve the front end's pointer-bump temporaries.
	NoCopyProp bool
	// NoWhileConversion disables while→DO conversion (for ablations).
	NoWhileConversion bool
}

// DefaultOptions enables the full paper pipeline.
func DefaultOptions() Options { return Options{IVSub: true} }

// SubPass is one named step of the scalar optimizer. Run returns the
// number of changes it made to the procedure.
type SubPass struct {
	Name string
	Run  func(*il.Proc) int
}

// SubPasses returns the scalar sub-passes opts enables, in the paper's
// §5.2 order: while loops convert to DO loops immediately after use-def
// chains are available (each sub-pass builds its own), then the DO-loop
// simplifications — constant propagation, induction-variable
// substitution, copy propagation — and finally dead-code elimination.
// This slice is the single place the scalar phase order is written down;
// both the fixpoint driver below and the pass manager's snapshot and
// instrumentation layers consume it.
func SubPasses(opts Options) []SubPass {
	var sp []SubPass
	if !opts.NoWhileConversion {
		sp = append(sp, SubPass{"while-to-do", ConvertWhileLoops})
	}
	sp = append(sp, SubPass{"constprop", PropagateConstants})
	if opts.IVSub {
		if opts.SimpleIVSub {
			sp = append(sp, SubPass{"ivsub-simple", SubstituteInductionVariablesSimple})
		} else {
			sp = append(sp, SubPass{"ivsub", SubstituteInductionVariables})
		}
	}
	if !opts.NoCopyProp {
		sp = append(sp, SubPass{"copyprop", PropagateCopies})
	}
	sp = append(sp,
		SubPass{"constprop-after", PropagateConstants},
		SubPass{"dce", EliminateDeadCode},
		SubPass{"unused-labels", RemoveUnusedLabels},
	)
	return sp
}

// Counts records, per sub-pass name, how many changes it made. Merging
// across procedures is a keywise sum, so the aggregate is deterministic
// regardless of the order procedures are optimized in.
type Counts map[string]int

// Add folds another procedure's counts into c.
func (c Counts) Add(o Counts) {
	for k, v := range o {
		c[k] += v
	}
}

// Optimize runs the scalar optimization pipeline on one procedure in the
// paper's order (§5.2); see SubPasses. The pipeline iterates to a bounded
// fixpoint since each sub-pass exposes opportunities for the others. The
// returned Counts report changes per sub-pass across all rounds.
func Optimize(p *il.Proc, opts Options) Counts {
	sub := SubPasses(opts)
	counts := Counts{}
	for round := 0; round < 8; round++ {
		changed := 0
		for _, s := range sub {
			n := s.Run(p)
			counts[s.Name] += n
			changed += n
		}
		if changed == 0 {
			break
		}
	}
	return counts
}

// OptimizeProgram runs Optimize over every procedure and returns the
// merged counts.
func OptimizeProgram(prog *il.Program, opts Options) Counts {
	counts := Counts{}
	for _, p := range prog.Procs {
		counts.Add(Optimize(p, opts))
	}
	return counts
}
