package lower

import (
	"strings"
	"testing"

	"repro/internal/il"
	"repro/internal/parser"
	"repro/internal/sema"
)

// compile parses, checks, and lowers a source file.
func compile(t *testing.T, src string) *il.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := File(f, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func proc(t *testing.T, src, name string) *il.Proc {
	t.Helper()
	p := compile(t, src).Proc(name)
	if p == nil {
		t.Fatalf("no proc %q", name)
	}
	return p
}

func TestSimpleAssign(t *testing.T) {
	p := proc(t, "void f(void) { int a; a = 1 + 2; }", "f")
	if len(p.Body) != 1 {
		t.Fatalf("body: %d stmts\n%s", len(p.Body), p)
	}
	as := p.Body[0].(*il.Assign)
	if v, ok := il.IsIntConst(as.Src); !ok || v != 3 {
		t.Errorf("1+2 did not fold: %s", as.Src)
	}
}

func TestPostIncShape(t *testing.T) {
	// The paper's §5.3 scheme: *a++ = *b++ becomes
	//   t1 = a; a = t1 + 4; t2 = b; b = t2 + 4; *t1 = *t2
	src := "void f(float *a, float *b) { *a++ = *b++; }"
	p := proc(t, src, "f")
	out := p.String()
	if got := len(p.Body); got != 5 {
		t.Fatalf("want 5 statements, got %d:\n%s", got, out)
	}
	// First statement: t = a.
	s0 := p.Body[0].(*il.Assign)
	if _, ok := s0.Dst.(*il.VarRef); !ok {
		t.Errorf("stmt 0 dst: %T", s0.Dst)
	}
	// Second: a = t + 4.
	s1 := p.Body[1].(*il.Assign)
	bin, ok := s1.Src.(*il.Bin)
	if !ok || bin.Op != il.OpAdd {
		t.Fatalf("stmt 1 src: %s", p.StmtString(s1, 0))
	}
	if v, _ := il.IsIntConst(bin.R); v != 4 {
		t.Errorf("pointer stride: %s (want 4)", bin.R)
	}
	// Last: *t1 = *t2.
	last := p.Body[4].(*il.Assign)
	if _, ok := last.Dst.(*il.Load); !ok {
		t.Errorf("stmt 4 dst: %T", last.Dst)
	}
	if _, ok := last.Src.(*il.Load); !ok {
		t.Errorf("stmt 4 src: %T", last.Src)
	}
}

func TestAssignChainVolatileWrittenOnceNeverRead(t *testing.T) {
	// §4: with volatile v, a = v = b writes v once and never reads it.
	src := "volatile int v; void f(int a, int b) { a = v = b; }"
	p := proc(t, src, "f")
	vid := p.LookupVar("v")
	if vid == il.NoVar {
		t.Fatal("no v in proc vars")
	}
	writes, reads := 0, 0
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if as, ok := s.(*il.Assign); ok {
			if vr, ok := as.Dst.(*il.VarRef); ok && vr.ID == vid {
				writes++
			}
			if il.UsesVar(as.Src, vid) {
				reads++
			}
		}
		return true
	})
	if writes != 1 {
		t.Errorf("v written %d times, want 1\n%s", writes, p)
	}
	if reads != 0 {
		t.Errorf("v read %d times, want 0\n%s", reads, p)
	}
}

func TestForBecomesWhile(t *testing.T) {
	src := "void f(int n) { int i; for (i = 0; i < n; i++) ; }"
	p := proc(t, src, "f")
	var loops int
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if _, ok := s.(*il.While); ok {
			loops++
		}
		if _, ok := s.(*il.DoLoop); ok {
			t.Error("front end must not emit DO loops")
		}
		return true
	})
	if loops != 1 {
		t.Errorf("loops: %d\n%s", loops, p)
	}
}

func TestWhileCondSLDuplicated(t *testing.T) {
	// while (n--) — the condition has a side effect; its statement list
	// must appear before the loop and again at the bottom of the body (§4).
	src := "void f(int n) { while (n--) ; }"
	p := proc(t, src, "f")
	// Expect: t=n; n=t-1; while(t) { t=n; n=t-1 }
	if len(p.Body) != 3 {
		t.Fatalf("top-level: %d\n%s", len(p.Body), p)
	}
	w, ok := p.Body[2].(*il.While)
	if !ok {
		t.Fatalf("stmt 2: %T\n%s", p.Body[2], p)
	}
	if len(w.Body) != 2 {
		t.Errorf("loop body: %d stmts (condition SL not duplicated?)\n%s", len(w.Body), p)
	}
}

func TestLogicalAnd(t *testing.T) {
	src := "int f(int a, int b) { return a && b; }"
	p := proc(t, src, "f")
	// Expect: t = 0; if a { t = (b != 0) }; return t
	var haveIf bool
	for _, s := range p.Body {
		if _, ok := s.(*il.If); ok {
			haveIf = true
		}
	}
	if !haveIf {
		t.Errorf("&& should lower to an If:\n%s", p)
	}
	out := p.String()
	if strings.Contains(out, "&&") {
		t.Error("&& appears in IL")
	}
}

func TestLogicalOrShortCircuit(t *testing.T) {
	// a || b must not evaluate b when a is true: b's side effects go
	// inside the If.
	src := "int g(void); int f(int a) { return a || g(); }"
	p := proc(t, src, "f")
	callInsideIf := false
	for _, s := range p.Body {
		if ifs, ok := s.(*il.If); ok {
			il.WalkStmts(ifs.Then, func(s il.Stmt) bool {
				if _, ok := s.(*il.Call); ok {
					callInsideIf = true
				}
				return true
			})
		}
		if _, ok := s.(*il.Call); ok {
			t.Errorf("call to g at top level (no short circuit):\n%s", p)
		}
	}
	if !callInsideIf {
		t.Errorf("call not guarded:\n%s", p)
	}
}

func TestCondOperator(t *testing.T) {
	src := "int f(int c) { return c ? 10 : 20; }"
	p := proc(t, src, "f")
	ifs, ok := p.Body[0].(*il.If)
	if !ok {
		t.Fatalf("stmt 0: %T", p.Body[0])
	}
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Errorf("branches: %d/%d", len(ifs.Then), len(ifs.Else))
	}
}

func TestCallLowering(t *testing.T) {
	src := "int g(int); int f(void) { return g(41) + 1; }"
	p := proc(t, src, "f")
	call, ok := p.Body[0].(*il.Call)
	if !ok {
		t.Fatalf("stmt 0: %T\n%s", p.Body[0], p)
	}
	if call.Callee != "g" || call.Dst == il.NoVar || len(call.Args) != 1 {
		t.Errorf("call: %s", p.StmtString(call, 0))
	}
}

func TestVoidCallDiscard(t *testing.T) {
	src := "void g(void); void f(void) { g(); }"
	p := proc(t, src, "f")
	call := p.Body[0].(*il.Call)
	if call.Dst != il.NoVar {
		t.Error("void call should discard result")
	}
}

func TestIndexLowering(t *testing.T) {
	// a[i] → *( &a + 4*i )
	src := "float a[100]; float f(int i) { return a[i]; }"
	p := proc(t, src, "f")
	ret := p.Body[0].(*il.Return)
	ld, ok := ret.Val.(*il.Load)
	if !ok {
		t.Fatalf("return: %T", ret.Val)
	}
	bin, ok := ld.Addr.(*il.Bin)
	if !ok || bin.Op != il.OpAdd {
		t.Fatalf("addr: %s", p.ExprString(ld.Addr))
	}
	if _, ok := bin.L.(*il.AddrOf); !ok {
		t.Errorf("base: %T", bin.L)
	}
	mul, ok := bin.R.(*il.Bin)
	if !ok || mul.Op != il.OpMul {
		t.Fatalf("offset: %s", p.ExprString(bin.R))
	}
	if v, _ := il.IsIntConst(mul.L); v != 4 {
		t.Errorf("scale: %s", p.ExprString(mul.L))
	}
}

func TestMultiDimIndex(t *testing.T) {
	// m[i][j] → *( &m + 16*i + 4*j )
	src := "float m[4][4]; float f(int i, int j) { return m[i][j]; }"
	p := proc(t, src, "f")
	out := p.String()
	if !strings.Contains(out, "16") || !strings.Contains(out, "4") {
		t.Errorf("expected strides 16 and 4:\n%s", out)
	}
}

func TestStructMember(t *testing.T) {
	src := `
struct point { float x, y; };
float f(struct point *p) { return p->y; }
`
	p := proc(t, src, "f")
	ret := p.Body[0].(*il.Return)
	ld := ret.Val.(*il.Load)
	bin, ok := ld.Addr.(*il.Bin)
	if !ok {
		t.Fatalf("p->y addr: %T", ld.Addr)
	}
	if v, _ := il.IsIntConst(bin.R); v != 4 {
		t.Errorf("offset of y: %s", p.ExprString(bin.R))
	}
}

func TestArrayInStruct(t *testing.T) {
	// The §10 construct: arrays embedded within structures.
	src := `
struct xform { float m[4][4]; };
float f(struct xform *t, int i, int j) { return t->m[i][j]; }
`
	p := proc(t, src, "f")
	if _, ok := p.Body[0].(*il.Return); !ok {
		t.Fatalf("body:\n%s", p)
	}
}

func TestVolatileLoadFlagged(t *testing.T) {
	src := "volatile int *status; int f(void) { return *status; }"
	p := proc(t, src, "f")
	ret := p.Body[0].(*il.Return)
	ld, ok := ret.Val.(*il.Load)
	if !ok {
		t.Fatalf("return: %T", ret.Val)
	}
	if !ld.Volatile {
		t.Error("volatile deref not flagged")
	}
}

func TestVolatileBusyWait(t *testing.T) {
	// The §1 example: while(!keyboard_status); must keep re-reading.
	src := "volatile int ks; void f(void) { ks = 0; while (!ks) ; }"
	p := proc(t, src, "f")
	w, ok := p.Body[1].(*il.While)
	if !ok {
		t.Fatalf("stmt 1: %T\n%s", p.Body[1], p)
	}
	if !p.HasVolatile(w.Cond) {
		t.Errorf("loop condition lost volatility: %s", p.ExprString(w.Cond))
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
void f(int n) {
	int i;
	for (i = 0; i < n; i++) {
		if (i == 3) continue;
		if (i == 7) break;
	}
}
`
	p := proc(t, src, "f")
	var gotos, labels int
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		switch s.(type) {
		case *il.Goto:
			gotos++
		case *il.Label:
			labels++
		}
		return true
	})
	if gotos != 2 || labels != 2 {
		t.Errorf("gotos=%d labels=%d\n%s", gotos, labels, p)
	}
}

func TestNoBreakNoLabels(t *testing.T) {
	// Clean counted loops must not sprout labels (they would block DO
	// conversion).
	src := "void f(int n) { int i; for (i = 0; i < n; i++) ; }"
	p := proc(t, src, "f")
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if _, ok := s.(*il.Label); ok {
			t.Errorf("unexpected label:\n%s", p)
		}
		return true
	})
}

func TestSwitchLowering(t *testing.T) {
	src := `
int f(int n) {
	int r;
	switch (n) {
	case 0: r = 10; break;
	case 1: r = 20; break;
	default: r = 30;
	}
	return r;
}
`
	p := proc(t, src, "f")
	out := p.String()
	if strings.Count(out, "goto") < 3 {
		t.Errorf("switch dispatch missing gotos:\n%s", out)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	src := `
int f(int n) {
	int r;
	r = 0;
	switch (n) {
	case 0: r = r + 1;
	case 1: r = r + 2; break;
	default: r = 99;
	}
	return r;
}
`
	p := proc(t, src, "f")
	// Must not contain a goto between case 0's body and case 1's body:
	// fallthrough is sequential. Just verify it lowers and has 2 case labels
	// plus an end label.
	labels := 0
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if _, ok := s.(*il.Label); ok {
			labels++
		}
		return true
	})
	if labels < 4 { // case0, case1, default, swend
		t.Errorf("labels: %d\n%s", labels, p)
	}
}

func TestDoWhile(t *testing.T) {
	src := "void f(int n) { do { n = n - 1; } while (n); }"
	p := proc(t, src, "f")
	if _, ok := p.Body[0].(*il.Label); !ok {
		t.Fatalf("do-while should start with label:\n%s", p)
	}
	last := p.Body[len(p.Body)-1].(*il.If)
	if _, ok := last.Then[0].(*il.Goto); !ok {
		t.Error("do-while should end with conditional goto")
	}
}

func TestCompoundAssignPointer(t *testing.T) {
	src := "void f(float *p) { p += 3; }"
	p := proc(t, src, "f")
	as := p.Body[0].(*il.Assign)
	bin := as.Src.(*il.Bin)
	if v, _ := il.IsIntConst(bin.R); v != 12 {
		t.Errorf("p += 3 should add 12 bytes, got %s", p.ExprString(bin.R))
	}
}

func TestStaticLocalBecomesGlobal(t *testing.T) {
	// §7: static variables inside catalogued procedures must be made
	// externally known.
	src := "int counter(void) { static int n; n = n + 1; return n; }"
	prog := compile(t, src)
	if prog.Global("counter.n") == nil {
		t.Errorf("static local not exported: %+v", prog.Globals)
	}
	p := prog.Proc("counter")
	id := p.LookupVar("counter.n")
	if id == il.NoVar || p.Vars[id].Class != il.ClassStatic {
		t.Error("static local var class wrong")
	}
}

func TestStringLiteral(t *testing.T) {
	src := `char *msg(void) { return "hi"; }`
	prog := compile(t, src)
	found := false
	for _, g := range prog.Globals {
		if g.Data != nil && string(g.Data) == "hi\x00" {
			found = true
		}
	}
	if !found {
		t.Errorf("string literal not interned: %+v", prog.Globals)
	}
}

func TestGlobalInit(t *testing.T) {
	prog := compile(t, "int n = 42; float pi = 3.5;")
	n := prog.Global("n")
	if !n.HasInit || n.InitInt != 42 {
		t.Errorf("n init: %+v", n)
	}
	pi := prog.Global("pi")
	if !pi.HasInit || pi.InitFloat != 3.5 {
		t.Errorf("pi init: %+v", pi)
	}
}

func TestLocalInitializers(t *testing.T) {
	src := "int f(void) { int a = 1, b = a + 1; return b; }"
	p := proc(t, src, "f")
	if len(p.Body) != 3 {
		t.Fatalf("body:\n%s", p)
	}
}

func TestFloatIntCoercion(t *testing.T) {
	src := "float f(int i) { float x; x = i; return x + i; }"
	p := proc(t, src, "f")
	as := p.Body[0].(*il.Assign)
	if _, ok := as.Src.(*il.Cast); !ok {
		t.Errorf("x = i should cast: %s", p.ExprString(as.Src))
	}
}

func TestAddressOfElement(t *testing.T) {
	// The backsolve idiom: p = &x[1].
	src := "void f(void) { float x[10]; float *p; p = &x[1]; }"
	p := proc(t, src, "f")
	as := p.Body[0].(*il.Assign)
	bin, ok := as.Src.(*il.Bin)
	if !ok || bin.Op != il.OpAdd {
		t.Fatalf("&x[1]: %s", p.ExprString(as.Src))
	}
	if v, _ := il.IsIntConst(bin.R); v != 4 {
		t.Errorf("&x[1] offset: %s", p.ExprString(bin.R))
	}
}

func TestPragmaSafeMarksLoop(t *testing.T) {
	src := "void f(float *x, int n) {\n#pragma safe\n\twhile (n) { *x++ = 0; n--; }\n}"
	p := proc(t, src, "f")
	found := false
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if w, ok := s.(*il.While); ok && w.Safe {
			found = true
		}
		return true
	})
	if !found {
		t.Errorf("pragma safe not applied:\n%s", p)
	}
}

func TestPaperDaxpyLowering(t *testing.T) {
	// §9: the daxpy body. for(;n;n--) *x++ = *y++ + alpha * *z++;
	src := `
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
	if (n <= 0)
		return;
	if (alpha == 0)
		return;
	for (; n; n--)
		*x++ = *y++ + alpha * *z++;
}
`
	p := proc(t, src, "daxpy")
	// Two guard Ifs then the While.
	if _, ok := p.Body[0].(*il.If); !ok {
		t.Fatalf("stmt 0: %T", p.Body[0])
	}
	if _, ok := p.Body[1].(*il.If); !ok {
		t.Fatalf("stmt 1: %T", p.Body[1])
	}
	w, ok := p.Body[2].(*il.While)
	if !ok {
		t.Fatalf("stmt 2: %T\n%s", p.Body[2], p)
	}
	// Loop body: 3 pointer bumps (2 stmts each) + star assign + n-- (1) = 8.
	if len(w.Body) != 8 {
		t.Errorf("daxpy loop body: %d stmts\n%s", len(w.Body), p)
	}
	// alpha == 0 compares float against float.
	guard := p.Body[1].(*il.If)
	if cmp, ok := guard.Cond.(*il.Bin); !ok || cmp.Op != il.OpEq {
		t.Errorf("guard: %s", p.ExprString(guard.Cond))
	}
}

func TestCommaInForInit(t *testing.T) {
	src := "void f(int n) { int i, j; for (i = 0, j = n; i < j; i++, j--) ; }"
	p := proc(t, src, "f")
	// init: i=0; j=n then loop.
	if len(p.Body) != 3 {
		t.Fatalf("body: %d\n%s", len(p.Body), p)
	}
}

func TestNestedLoopLowering(t *testing.T) {
	src := `
float a[16][16];
void f(int n) {
	int i, j;
	for (i = 0; i < n; i++)
		for (j = 0; j < n; j++)
			a[i][j] = 0;
}
`
	p := proc(t, src, "f")
	depth := 0
	maxDepth := 0
	var walk func([]il.Stmt, int)
	walk = func(list []il.Stmt, d int) {
		for _, s := range list {
			if w, ok := s.(*il.While); ok {
				if d+1 > maxDepth {
					maxDepth = d + 1
				}
				walk(w.Body, d+1)
			}
		}
	}
	walk(p.Body, depth)
	if maxDepth != 2 {
		t.Errorf("nesting depth %d, want 2\n%s", maxDepth, p)
	}
}
