// Package lower translates the type-checked AST into the high-level IL.
//
// Following §4 of the paper, every C expression is compiled into a pair
// (SL, E): a list of IL statements that performs the expression's side
// effects, and a pure IL expression for its value. All the side-effecting
// C operators are recast this way:
//
//   - assignment:  (SL1,E1) = (SL2,E2)  ⇒  SL1; SL2; t = E2; E1 = t
//     with result t — the temporary makes chains like a = v = b write the
//     volatile v exactly once and never read it;
//   - ++/--:       a++  ⇒  t = a; a = t + size   with result t;
//   - && and ||:   short-circuit via an If statement assigning a temp;
//   - ?::          an If statement assigning a temp;
//   - calls:       a Call statement assigning a temp.
//
// Conditional contexts duplicate the condition's statement list into the
// loop bottom (§4), and for loops are represented as while loops without
// any sophisticated analysis (§5.2) — the optimizer converts them back.
package lower

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ast"
	"repro/internal/ctype"
	"repro/internal/il"
	"repro/internal/sema"
	"repro/internal/token"
	"repro/internal/workpool"
)

// Error is a lowering error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos token.Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// File lowers a checked file to an IL program.
func File(f *ast.File, info *sema.Info) (*il.Program, error) {
	return FileWorkers(f, info, 1)
}

// FileWorkers is File with up to `workers` function bodies lowering
// concurrently on the pass worker pool (1 lowers serially). Lowering one
// function is a pure function of (decl, info): the only program-level
// writes — function statics and string-literal globals — are buffered on
// the per-function lowerer and flushed in declaration order, with string
// globals renumbered to the serial .strN sequence at flush. The resulting
// program is bit-identical to serial lowering.
func FileWorkers(f *ast.File, info *sema.Info, workers int) (*il.Program, error) {
	prog := &il.Program{}
	for _, g := range f.Globals {
		gv := il.GlobalVar{Name: g.Name, Type: g.Type}
		if g.Init != nil {
			iv, fv, ok := constValue(g.Init)
			if !ok {
				return nil, errf(g.Pos(), "global %s: initializer must be a constant", g.Name)
			}
			gv.InitInt = iv
			gv.InitFloat = fv
			gv.HasInit = true
		}
		if g.InitList != nil {
			data, err := buildInitData(g)
			if err != nil {
				return nil, err
			}
			gv.Data = data
		}
		prog.AddGlobal(gv)
	}
	var defs []*ast.FuncDecl
	for _, fn := range f.Funcs {
		if fn.Body != nil {
			defs = append(defs, fn)
		}
	}
	procs := make([]*il.Proc, len(defs))
	lws := make([]*lowerer, len(defs))
	errs := make([]error, len(defs))
	workpool.ForEachN(len(defs), workers, func(i int) {
		procs[i], lws[i], errs[i] = lowerFunc(defs[i], info)
	})
	// Deterministic merge in declaration order: the first error is the
	// serial one (lowering errors are per-function), and each function's
	// buffered globals land exactly where serial lowering appended them.
	strCount := 0
	for i := range defs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		lw := lws[i]
		for _, r := range lw.strRefs {
			strCount++
			name := fmt.Sprintf(".str%d", strCount)
			lw.pending[r.global].Name = name
			procs[i].Vars[r.v].Name = name
		}
		for _, gv := range lw.pending {
			prog.AddGlobal(gv)
		}
		prog.Procs = append(prog.Procs, procs[i])
	}
	return prog, nil
}

type lowerer struct {
	proc *il.Proc
	info *sema.Info
	vars map[*sema.Symbol]il.VarID
	// ar is the proc's arena; every lowered node is carved from it.
	ar *il.Arena

	breakTo    string // label to goto on break ("" if none)
	continueTo string
	breakUsed  *bool
	contUsed   *bool

	// pending buffers the globals this function creates — statics and
	// string literals, in encounter order — so lowering never touches the
	// shared program; FileWorkers flushes them in declaration order.
	pending []il.GlobalVar
	// strRefs marks which pending entries are string literals (and the
	// proc-local vars naming them) for the flush-time .strN renumbering.
	strRefs []strRef

	// pendingSafe is set after "#pragma safe"; the next loop lowered gets
	// its Safe flag.
	pendingSafe bool
}

// strRef ties a function-local string literal to its pending-global slot
// and the proc variable that addresses it.
type strRef struct {
	global int
	v      il.VarID
}

func lowerFunc(fn *ast.FuncDecl, info *sema.Info) (*il.Proc, *lowerer, error) {
	p := il.NewProc(fn.Name, fn.Type.Ret)
	p.Variadic = fn.Type.Variadic
	// Every proc owns an arena: lowered nodes and everything the optimizer
	// rebuilds come from per-proc slabs, released in one step when the
	// compile's result is dropped (see DESIGN.md, "Memory architecture").
	p.SetArena(il.NewArena())
	lw := &lowerer{proc: p, info: info, vars: map[*sema.Symbol]il.VarID{}, ar: p.Arena()}
	for _, psym := range info.ParamSyms[fn] {
		id := p.AddVar(il.Var{Name: psym.Name, Type: psym.Type, Class: il.ClassParam, AddrTaken: psym.AddrTaken})
		p.Params = append(p.Params, id)
		lw.vars[psym] = id
	}
	stmts, err := lw.stmt(fn.Body)
	if err != nil {
		return nil, nil, err
	}
	p.Body = stmts
	return p, lw, nil
}

// constValue extracts a compile-time constant from an initializer
// expression (integer, float, char, or their negations).
func constValue(e ast.Expr) (int64, float64, bool) {
	switch c := e.(type) {
	case *ast.IntConst:
		return c.Value, float64(c.Value), true
	case *ast.FloatConst:
		return int64(c.Value), c.Value, true
	case *ast.UnaryExpr:
		if c.Op == ast.Neg {
			iv, fv, ok := constValue(c.X)
			return -iv, -fv, ok
		}
	case *ast.CastExpr:
		return constValue(c.X)
	}
	return 0, 0, false
}

// buildInitData renders a brace-initialized global's initial bytes.
func buildInitData(g *ast.VarDecl) ([]byte, error) {
	cells := ctype.ScalarCells(g.Type)
	data := make([]byte, g.Type.Size())
	for i, e := range g.InitList {
		iv, fv, ok := constValue(e)
		if !ok {
			return nil, errf(e.Pos(), "global %s: initializer %d must be a constant", g.Name, i+1)
		}
		writeCell(data[cells[i].Offset:], cells[i].Type, iv, fv)
	}
	return data, nil
}

// writeCell stores one scalar value into a data image.
func writeCell(b []byte, t *ctype.Type, iv int64, fv float64) {
	switch {
	case t.Kind == ctype.Float:
		binary.LittleEndian.PutUint32(b, math.Float32bits(float32(fv)))
	case t.Kind == ctype.Double:
		binary.LittleEndian.PutUint64(b, math.Float64bits(fv))
	case t.Size() == 1:
		b[0] = byte(iv)
	case t.Size() == 2:
		binary.LittleEndian.PutUint16(b, uint16(iv))
	default:
		binary.LittleEndian.PutUint32(b, uint32(iv))
	}
}

// Arena-allocating shorthands for the constant and arithmetic builders the
// lowering uses on nearly every expression.
func (lw *lowerer) intC(v int64) *il.ConstInt { return lw.ar.ConstInt(v, ctype.IntType) }

func (lw *lowerer) addC(l, r il.Expr, t *ctype.Type) il.Expr {
	return il.NewBinIn(lw.ar, il.OpAdd, l, r, t)
}

func (lw *lowerer) mulC(l, r il.Expr, t *ctype.Type) il.Expr {
	return il.NewBinIn(lw.ar, il.OpMul, l, r, t)
}

// varID returns the procedure-local variable for a symbol, creating the
// table entry on first use. Globals and function statics become ClassGlobal
// / ClassStatic entries that name program-level storage.
func (lw *lowerer) varID(sym *sema.Symbol) il.VarID {
	if id, ok := lw.vars[sym]; ok {
		return id
	}
	v := il.Var{Name: sym.Name, Type: sym.Type, AddrTaken: sym.AddrTaken}
	switch sym.Kind {
	case sema.SymGlobal:
		v.Class = il.ClassGlobal
	case sema.SymStaticLocal:
		v.Class = il.ClassStatic
		v.Name = sym.MangledName
		lw.pending = append(lw.pending, il.GlobalVar{Name: sym.MangledName, Type: sym.Type})
	case sema.SymParam:
		v.Class = il.ClassParam
	default:
		v.Class = il.ClassLocal
	}
	id := lw.proc.AddVar(v)
	lw.vars[sym] = id
	return id
}

// ---------------------------------------------------------------- statements

// stmt lowers one AST statement and stamps every resulting IL statement
// that does not yet have a position with the source statement's position.
// Nested statements were stamped by their own recursive lowering first, so
// the outer stamp only fills compiler-manufactured statements (temp
// assignments, branch scaffolding) — no lowered statement escapes with a
// zero token.Pos.
func (lw *lowerer) stmt(s ast.Stmt) ([]il.Stmt, error) {
	out, err := lw.stmtInner(s)
	if err != nil {
		return nil, err
	}
	il.StampStmts(out, s.Pos())
	return out, nil
}

func (lw *lowerer) stmtInner(s ast.Stmt) ([]il.Stmt, error) {
	switch n := s.(type) {
	case *ast.CompoundStmt:
		var out []il.Stmt
		for _, sub := range n.List {
			sl, err := lw.stmt(sub)
			if err != nil {
				return nil, err
			}
			out = append(out, sl...)
		}
		return out, nil
	case *ast.EmptyStmt:
		return nil, nil
	case *ast.PragmaStmt:
		if n.Text == "safe" {
			lw.pendingSafe = true
		}
		return nil, nil
	case *ast.DeclStmt:
		var out []il.Stmt
		for _, d := range n.Decls {
			sym := lw.info.Decls[d]
			id := lw.varID(sym)
			if d.Init != nil {
				sl, e, err := lw.expr(d.Init)
				if err != nil {
					return nil, err
				}
				out = append(out, sl...)
				out = append(out, lw.ar.Assign(il.Assign{
					Dst: lw.ar.VarRef(id, sym.Type),
					Src: lw.coerce(e, sym.Type),
				}))
			}
			if d.InitList != nil {
				sl, err := lw.initList(d, sym, id)
				if err != nil {
					return nil, err
				}
				out = append(out, sl...)
			}
		}
		return out, nil
	case *ast.ExprStmt:
		return lw.exprStmt(n.X)
	case *ast.IfStmt:
		condSL, cond, err := lw.cond(n.Cond)
		if err != nil {
			return nil, err
		}
		then, err := lw.stmt(n.Then)
		if err != nil {
			return nil, err
		}
		var els []il.Stmt
		if n.Else != nil {
			els, err = lw.stmt(n.Else)
			if err != nil {
				return nil, err
			}
		}
		return append(condSL, lw.ar.If(il.If{Cond: cond, Then: then, Else: els})), nil
	case *ast.WhileStmt:
		return lw.whileLoop(n.Cond, n.Body, nil)
	case *ast.ForStmt:
		var out []il.Stmt
		if n.Init != nil {
			sl, err := lw.exprStmt(n.Init)
			if err != nil {
				return nil, err
			}
			out = append(out, sl...)
		}
		cond := n.Cond
		if cond == nil {
			one := ast.NewIntConst(n.Pos(), 1)
			cond = one
		}
		loop, err := lw.whileLoop(cond, n.Body, n.Post)
		if err != nil {
			return nil, err
		}
		return append(out, loop...), nil
	case *ast.DoWhileStmt:
		return lw.doWhile(n)
	case *ast.ReturnStmt:
		if n.X == nil {
			return []il.Stmt{lw.ar.Return(il.Return{})}, nil
		}
		sl, e, err := lw.expr(n.X)
		if err != nil {
			return nil, err
		}
		return append(sl, lw.ar.Return(il.Return{Val: lw.coerce(e, lw.proc.Ret)})), nil
	case *ast.BreakStmt:
		if lw.breakTo == "" {
			return nil, errf(n.Pos(), "break outside loop")
		}
		*lw.breakUsed = true
		return []il.Stmt{lw.ar.Goto(il.Goto{Target: lw.breakTo})}, nil
	case *ast.ContinueStmt:
		if lw.continueTo == "" {
			return nil, errf(n.Pos(), "continue outside loop")
		}
		*lw.contUsed = true
		return []il.Stmt{lw.ar.Goto(il.Goto{Target: lw.continueTo})}, nil
	case *ast.GotoStmt:
		return []il.Stmt{lw.ar.Goto(il.Goto{Target: "." + n.Label})}, nil
	case *ast.LabeledStmt:
		inner, err := lw.stmt(n.Stmt)
		if err != nil {
			return nil, err
		}
		return append([]il.Stmt{lw.ar.Label(il.Label{Name: "." + n.Label})}, inner...), nil
	case *ast.SwitchStmt:
		return lw.switchStmt(n)
	case *ast.CaseStmt:
		return nil, errf(n.Pos(), "case label outside switch lowering")
	}
	return nil, errf(s.Pos(), "unhandled statement %T", s)
}

// initList expands a local brace initializer into element stores; cells
// past the list are zeroed, per C semantics.
func (lw *lowerer) initList(d *ast.VarDecl, sym *sema.Symbol, id il.VarID) ([]il.Stmt, error) {
	cells := ctype.ScalarCells(sym.Type)
	base := lw.ar.AddrOf(id, ctype.PointerTo(sym.Type))
	var out []il.Stmt
	// Scalar declared with braces: plain assignment.
	if !sym.Type.IsAggregate() && sym.Type.Kind != ctype.Array {
		sl, e, err := lw.expr(d.InitList[0])
		if err != nil {
			return nil, err
		}
		out = append(out, sl...)
		return append(out, lw.ar.Assign(il.Assign{Dst: lw.ar.VarRef(id, sym.Type), Src: lw.coerce(e, sym.Type)})), nil
	}
	for i, cell := range cells {
		addr := lw.addC(il.CloneExprIn(lw.ar, base), lw.intC(int64(cell.Offset)), ctype.PointerTo(cell.Type))
		dst := lw.ar.Load(addr, cell.Type, cell.Type.Volatile)
		if i < len(d.InitList) {
			sl, e, err := lw.expr(d.InitList[i])
			if err != nil {
				return nil, err
			}
			out = append(out, sl...)
			out = append(out, lw.ar.Assign(il.Assign{Dst: dst, Src: lw.coerce(e, cell.Type)}))
			continue
		}
		// Zero the rest.
		var zero il.Expr
		if cell.Type.IsFloat() {
			zero = lw.ar.ConstFloat(0, cell.Type)
		} else {
			zero = lw.intC(0)
		}
		out = append(out, lw.ar.Assign(il.Assign{Dst: dst, Src: zero}))
	}
	return out, nil
}

// whileLoop lowers while/for loops. post is the for-loop post expression
// (nil for while). Per §4, the condition's statement list is emitted before
// the loop and duplicated at the bottom of the body.
func (lw *lowerer) whileLoop(cond ast.Expr, body ast.Stmt, post ast.Expr) ([]il.Stmt, error) {
	safe := lw.pendingSafe
	lw.pendingSafe = false

	condSL, condE, err := lw.cond(cond)
	if err != nil {
		return nil, err
	}

	breakLbl := lw.proc.NewLabel("brk")
	contLbl := lw.proc.NewLabel("cont")
	var breakUsed, contUsed bool
	savedB, savedC := lw.breakTo, lw.continueTo
	savedBU, savedCU := lw.breakUsed, lw.contUsed
	lw.breakTo, lw.continueTo = breakLbl, contLbl
	lw.breakUsed, lw.contUsed = &breakUsed, &contUsed
	bodySL, err := lw.stmt(body)
	lw.breakTo, lw.continueTo = savedB, savedC
	lw.breakUsed, lw.contUsed = savedBU, savedCU
	if err != nil {
		return nil, err
	}

	var loopBody []il.Stmt
	loopBody = append(loopBody, bodySL...)
	if contUsed {
		loopBody = append(loopBody, lw.ar.Label(il.Label{Name: contLbl}))
	}
	if post != nil {
		postSL, err := lw.exprStmt(post)
		if err != nil {
			return nil, err
		}
		loopBody = append(loopBody, postSL...)
	}
	// Duplicate the condition's statement list at the loop bottom (§4).
	loopBody = append(loopBody, il.CloneStmtsIn(lw.ar, condSL)...)

	out := condSL
	out = append(out, lw.ar.While(il.While{Cond: condE, Body: loopBody, Safe: safe}))
	if breakUsed {
		out = append(out, lw.ar.Label(il.Label{Name: breakLbl}))
	}
	return out, nil
}

// doWhile lowers do-while with a backward goto; such loops are irregular
// from the loop converter's point of view, matching their rarity in the
// paper's workloads.
func (lw *lowerer) doWhile(n *ast.DoWhileStmt) ([]il.Stmt, error) {
	top := lw.proc.NewLabel("do")
	breakLbl := lw.proc.NewLabel("brk")
	contLbl := lw.proc.NewLabel("cont")
	var breakUsed, contUsed bool
	savedB, savedC := lw.breakTo, lw.continueTo
	savedBU, savedCU := lw.breakUsed, lw.contUsed
	lw.breakTo, lw.continueTo = breakLbl, contLbl
	lw.breakUsed, lw.contUsed = &breakUsed, &contUsed
	body, err := lw.stmt(n.Body)
	lw.breakTo, lw.continueTo = savedB, savedC
	lw.breakUsed, lw.contUsed = savedBU, savedCU
	if err != nil {
		return nil, err
	}
	condSL, condE, err := lw.cond(n.Cond)
	if err != nil {
		return nil, err
	}
	out := []il.Stmt{lw.ar.Label(il.Label{Name: top})}
	out = append(out, body...)
	if contUsed {
		out = append(out, lw.ar.Label(il.Label{Name: contLbl}))
	}
	out = append(out, condSL...)
	out = append(out, &il.If{Cond: condE, Then: []il.Stmt{lw.ar.Goto(il.Goto{Target: top})}})
	if breakUsed {
		out = append(out, lw.ar.Label(il.Label{Name: breakLbl}))
	}
	return out, nil
}

// switchStmt lowers a switch to a compare-and-goto dispatch followed by the
// body with case labels replaced by IL labels.
func (lw *lowerer) switchStmt(n *ast.SwitchStmt) ([]il.Stmt, error) {
	tagSL, tagE, err := lw.expr(n.Tag)
	if err != nil {
		return nil, err
	}
	out := tagSL
	tag := lw.proc.NewTemp(ctype.IntType)
	out = append(out, lw.ar.Assign(il.Assign{Dst: lw.ar.VarRef(tag, ctype.IntType), Src: tagE}))

	endLbl := lw.proc.NewLabel("swend")
	// Collect the case arms in source order.
	type arm struct {
		val   *int64 // nil for default
		label string
	}
	var arms []arm
	caseLabels := map[*ast.CaseStmt]string{}
	collectCases(n.Body, func(cs *ast.CaseStmt) error {
		lbl := lw.proc.NewLabel("case")
		caseLabels[cs] = lbl
		if cs.Value == nil {
			arms = append(arms, arm{nil, lbl})
			return nil
		}
		c, ok := cs.Value.(*ast.IntConst)
		if !ok {
			return errf(cs.Pos(), "case value must be an integer constant")
		}
		v := c.Value
		arms = append(arms, arm{&v, lbl})
		return nil
	})

	defaultLbl := endLbl
	for _, a := range arms {
		if a.val == nil {
			defaultLbl = a.label
			continue
		}
		out = append(out, &il.If{
			Cond: il.NewBinIn(lw.ar, il.OpEq, lw.ar.VarRef(tag, ctype.IntType), lw.intC(*a.val), ctype.IntType),
			Then: []il.Stmt{lw.ar.Goto(il.Goto{Target: a.label})},
		})
	}
	out = append(out, lw.ar.Goto(il.Goto{Target: defaultLbl}))

	// Lower the body with break → end and cases → labels.
	var breakUsed bool
	savedB := lw.breakTo
	savedBU := lw.breakUsed
	lw.breakTo = endLbl
	lw.breakUsed = &breakUsed
	bodySL, err := lw.switchBody(n.Body, caseLabels)
	lw.breakTo = savedB
	lw.breakUsed = savedBU
	if err != nil {
		return nil, err
	}
	out = append(out, bodySL...)
	out = append(out, lw.ar.Label(il.Label{Name: endLbl}))
	return out, nil
}

// collectCases walks the immediate body of a switch, visiting case labels
// (not descending into nested switches).
func collectCases(s ast.Stmt, f func(*ast.CaseStmt) error) {
	switch n := s.(type) {
	case *ast.CompoundStmt:
		for _, sub := range n.List {
			collectCases(sub, f)
		}
	case *ast.CaseStmt:
		if err := f(n); err == nil {
			collectCases(n.Stmt, f)
		}
	case *ast.LabeledStmt:
		collectCases(n.Stmt, f)
	}
}

// switchBody lowers the switch body, replacing case statements by labels.
func (lw *lowerer) switchBody(s ast.Stmt, labels map[*ast.CaseStmt]string) ([]il.Stmt, error) {
	switch n := s.(type) {
	case *ast.CompoundStmt:
		var out []il.Stmt
		for _, sub := range n.List {
			sl, err := lw.switchBody(sub, labels)
			if err != nil {
				return nil, err
			}
			out = append(out, sl...)
		}
		return out, nil
	case *ast.CaseStmt:
		inner, err := lw.switchBody(n.Stmt, labels)
		if err != nil {
			return nil, err
		}
		return append([]il.Stmt{lw.ar.Label(il.Label{Name: labels[n]})}, inner...), nil
	default:
		return lw.stmt(s)
	}
}

// ---------------------------------------------------------------- expressions

// exprStmt lowers an expression evaluated only for effect, avoiding the
// value temporary for the common assignment and increment forms.
func (lw *lowerer) exprStmt(e ast.Expr) ([]il.Stmt, error) {
	switch n := e.(type) {
	case *ast.AssignExpr:
		return lw.assign(n, false)
	case *ast.CommaExpr:
		l, err := lw.exprStmt(n.L)
		if err != nil {
			return nil, err
		}
		r, err := lw.exprStmt(n.R)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case *ast.UnaryExpr:
		switch n.Op {
		case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
			sl, _, err := lw.incDec(n, false)
			return sl, err
		}
	case *ast.CallExpr:
		sl, _, err := lw.call(n, false)
		return sl, err
	}
	sl, _, err := lw.expr(e)
	return sl, err
}

// cond lowers an expression used in boolean context.
func (lw *lowerer) cond(e ast.Expr) ([]il.Stmt, il.Expr, error) {
	sl, v, err := lw.expr(e)
	if err != nil {
		return nil, nil, err
	}
	// Pointers and floats compare against zero; integers are used directly.
	t := v.Type()
	if t != nil && t.IsFloat() {
		v = il.NewBinIn(lw.ar, il.OpNe, v, lw.ar.ConstFloat(0, t), ctype.IntType)
	}
	return sl, v, nil
}

// expr lowers e to (SL, E).
func (lw *lowerer) expr(e ast.Expr) ([]il.Stmt, il.Expr, error) {
	switch n := e.(type) {
	case *ast.IntConst:
		return nil, &il.ConstInt{Val: n.Value, T: n.Type()}, nil
	case *ast.FloatConst:
		return nil, &il.ConstFloat{Val: n.Value, T: n.Type()}, nil
	case *ast.StrConst:
		return nil, lw.stringLit(n), nil
	case *ast.IdentExpr:
		sym := lw.info.Uses[n]
		if sym.Kind == sema.SymFunc {
			// Function designator in expression context: its "value" is a
			// name; only calls and function pointers consume it.
			return nil, lw.ar.AddrOf(lw.funcRef(sym), ctype.PointerTo(sym.Type)), nil
		}
		id := lw.varID(sym)
		t := sym.Type
		if t.Kind == ctype.Array || t.IsAggregate() {
			// Arrays decay to their base address in rvalue context;
			// aggregates are referenced by address.
			return nil, lw.ar.AddrOf(id, ctype.PointerTo(t.Decay().Elem)), nil
		}
		return nil, lw.ar.VarRef(id, t), nil
	case *ast.UnaryExpr:
		return lw.unary(n)
	case *ast.BinaryExpr:
		return lw.binary(n)
	case *ast.AssignExpr:
		return lw.assignForValue(n)
	case *ast.CondExpr:
		return lw.condExpr(n)
	case *ast.CommaExpr:
		l, err := lw.exprStmt(n.L)
		if err != nil {
			return nil, nil, err
		}
		rSL, rE, err := lw.expr(n.R)
		if err != nil {
			return nil, nil, err
		}
		return append(l, rSL...), rE, nil
	case *ast.CallExpr:
		return lw.call(n, true)
	case *ast.IndexExpr, *ast.MemberExpr:
		addr, vol, err := lw.lvalueAddr(e)
		if err != nil {
			return nil, nil, err
		}
		t := e.Type()
		if t.Kind == ctype.Array || t.IsAggregate() {
			return addr.sl, addr.e, nil // decay again
		}
		return addr.sl, lw.ar.Load(addr.e, t, vol || t.Volatile), nil
	case *ast.CastExpr:
		sl, v, err := lw.expr(n.X)
		if err != nil {
			return nil, nil, err
		}
		return sl, il.NewCastIn(lw.ar, v, n.To), nil
	case *ast.SizeofExpr:
		var t *ctype.Type
		if n.OfType != nil {
			t = n.OfType
		} else {
			t = n.X.Type()
		}
		return nil, lw.intC(int64(t.Size())), nil
	}
	return nil, nil, errf(e.Pos(), "unhandled expression %T", e)
}

// funcRef returns a proc-level variable standing for a function's address
// (used for function pointers).
func (lw *lowerer) funcRef(sym *sema.Symbol) il.VarID {
	if id, ok := lw.vars[sym]; ok {
		return id
	}
	id := lw.proc.AddVar(il.Var{Name: sym.Name, Type: sym.Type, Class: il.ClassGlobal})
	lw.vars[sym] = id
	return id
}

// stringLit interns a string literal as a char-array global. The global
// goes into the pending buffer with an empty name; FileWorkers assigns the
// serial .strN name (unit-wide, in declaration-then-encounter order) when
// it flushes the buffers.
func (lw *lowerer) stringLit(n *ast.StrConst) il.Expr {
	data := append([]byte(n.Value), 0)
	t := ctype.ArrayOf(ctype.CharType, len(data))
	lw.pending = append(lw.pending, il.GlobalVar{Name: "", Type: t, Data: data})
	id := lw.proc.AddVar(il.Var{Name: "", Type: t, Class: il.ClassGlobal})
	lw.strRefs = append(lw.strRefs, strRef{global: len(lw.pending) - 1, v: id})
	return lw.ar.AddrOf(id, ctype.PointerTo(ctype.CharType))
}

type addrRes struct {
	sl []il.Stmt
	e  il.Expr // byte address
}

// lvalueAddr computes the address of an lvalue expression, returning the
// statement list, address expression, and whether the storage is volatile.
func (lw *lowerer) lvalueAddr(e ast.Expr) (addrRes, bool, error) {
	switch n := e.(type) {
	case *ast.IdentExpr:
		sym := lw.info.Uses[n]
		id := lw.varID(sym)
		return addrRes{e: lw.ar.AddrOf(id, ctype.PointerTo(sym.Type))}, sym.Type.Volatile, nil
	case *ast.UnaryExpr:
		if n.Op == ast.Deref {
			sl, v, err := lw.expr(n.X)
			if err != nil {
				return addrRes{}, false, err
			}
			pt := n.X.Type().Decay()
			vol := pt.Kind == ctype.Pointer && pt.Elem.Volatile
			return addrRes{sl: sl, e: v}, vol, nil
		}
	case *ast.IndexExpr:
		// a[i] address = a + i*size (byte arithmetic).
		xt := n.X.Type().Decay()
		it := n.Index.Type().Decay()
		base, idx := n.X, n.Index
		if xt.Kind != ctype.Pointer && it.Kind == ctype.Pointer {
			base, idx = n.Index, n.X
			xt = it
		}
		bSL, bE, err := lw.expr(base)
		if err != nil {
			return addrRes{}, false, err
		}
		iSL, iE, err := lw.expr(idx)
		if err != nil {
			return addrRes{}, false, err
		}
		elem := xt.Elem
		off := lw.mulC(lw.intC(int64(elem.Size())), iE, ctype.IntType)
		addr := lw.addC(bE, off, bE.Type())
		return addrRes{sl: append(bSL, iSL...), e: addr}, elem.Volatile, nil
	case *ast.MemberExpr:
		var base addrRes
		var st *ctype.Type
		var err error
		if n.Arrow {
			var sl []il.Stmt
			var v il.Expr
			sl, v, err = lw.expr(n.X)
			if err != nil {
				return addrRes{}, false, err
			}
			base = addrRes{sl: sl, e: v}
			st = n.X.Type().Decay().Elem
		} else {
			var vol bool
			base, vol, err = lw.lvalueAddr(n.X)
			if err != nil {
				return addrRes{}, false, err
			}
			_ = vol
			st = n.X.Type()
		}
		f := st.Field(n.Name)
		addr := lw.addC(base.e, lw.intC(int64(f.Offset)), base.e.Type())
		return addrRes{sl: base.sl, e: addr}, f.Type.Volatile, nil
	}
	return addrRes{}, false, errf(e.Pos(), "not an lvalue: %T", e)
}

// scale returns sizeof(elem) for a pointer/array type used in arithmetic.
func scale(t *ctype.Type) int64 {
	d := t.Decay()
	if d.Kind == ctype.Pointer {
		return int64(d.Elem.Size())
	}
	return 1
}

func (lw *lowerer) unary(n *ast.UnaryExpr) ([]il.Stmt, il.Expr, error) {
	switch n.Op {
	case ast.Neg:
		sl, v, err := lw.expr(n.X)
		if err != nil {
			return nil, nil, err
		}
		return sl, il.NewUnIn(lw.ar, il.OpNeg, lw.coerce(v, n.Type()), n.Type()), nil
	case ast.BitNot:
		sl, v, err := lw.expr(n.X)
		if err != nil {
			return nil, nil, err
		}
		return sl, il.NewUnIn(lw.ar, il.OpBitNot, lw.coerce(v, n.Type()), n.Type()), nil
	case ast.Not:
		sl, v, err := lw.expr(n.X)
		if err != nil {
			return nil, nil, err
		}
		if v.Type() != nil && v.Type().IsFloat() {
			return sl, il.NewBinIn(lw.ar, il.OpEq, v, lw.ar.ConstFloat(0, v.Type()), ctype.IntType), nil
		}
		return sl, il.NewUnIn(lw.ar, il.OpNot, v, ctype.IntType), nil
	case ast.Deref:
		sl, v, err := lw.expr(n.X)
		if err != nil {
			return nil, nil, err
		}
		t := n.Type()
		if t.Kind == ctype.Array || t.IsAggregate() {
			return sl, v, nil
		}
		pt := n.X.Type().Decay()
		vol := t.Volatile || (pt.Kind == ctype.Pointer && pt.Elem.Volatile)
		return sl, lw.ar.Load(v, t, vol), nil
	case ast.Addr:
		res, _, err := lw.lvalueAddr(n.X)
		if err != nil {
			return nil, nil, err
		}
		return res.sl, res.e, nil
	case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
		return lw.incDec(n, true)
	}
	return nil, nil, errf(n.Pos(), "unhandled unary %v", n.Op)
}

// incDec lowers the four ++/-- forms per the paper's scheme. When the value
// is needed, post forms yield a temp holding the old value and pre forms
// yield a temp holding the new value (a temp so that a later change to the
// variable cannot be observed through the expression).
func (lw *lowerer) incDec(n *ast.UnaryExpr, needValue bool) ([]il.Stmt, il.Expr, error) {
	t := n.Type() // decayed operand type
	op := il.OpAdd
	if n.Op == ast.PreDec || n.Op == ast.PostDec {
		op = il.OpSub
	}
	delta := lw.intC(1)
	if t.Kind == ctype.Pointer {
		delta = lw.intC(scale(n.X.Type()))
	}
	isPost := n.Op == ast.PostInc || n.Op == ast.PostDec

	// Fast path: a named scalar variable.
	if id, simple := lw.simpleVar(n.X); simple {
		vref := lw.ar.VarRef(id, lw.proc.Vars[id].Type)
		if !needValue {
			return []il.Stmt{lw.ar.Assign(il.Assign{Dst: vref, Src: il.NewBinIn(lw.ar, op, il.CloneExprIn(lw.ar, vref), delta, t)})}, nil, nil
		}
		tmp := lw.proc.NewTemp(t)
		var sl []il.Stmt
		if isPost {
			// t = a; a = t ± d; value t  (the paper's §5.3 shape)
			sl = append(sl,
				lw.ar.Assign(il.Assign{Dst: lw.ar.VarRef(tmp, t), Src: il.CloneExprIn(lw.ar, vref)}),
				lw.ar.Assign(il.Assign{Dst: il.CloneExprIn(lw.ar, vref).(*il.VarRef), Src: il.NewBinIn(lw.ar, op, lw.ar.VarRef(tmp, t), delta, t)}))
		} else {
			sl = append(sl,
				lw.ar.Assign(il.Assign{Dst: il.CloneExprIn(lw.ar, vref).(*il.VarRef), Src: il.NewBinIn(lw.ar, op, il.CloneExprIn(lw.ar, vref), delta, t)}),
				lw.ar.Assign(il.Assign{Dst: lw.ar.VarRef(tmp, t), Src: il.CloneExprIn(lw.ar, vref)}))
		}
		return sl, lw.ar.VarRef(tmp, t), nil
	}

	// General lvalue: compute the address once.
	res, vol, err := lw.lvalueAddr(n.X)
	if err != nil {
		return nil, nil, err
	}
	sl := res.sl
	addrT := ctype.PointerTo(t)
	addrTmp := lw.proc.NewTemp(addrT)
	sl = append(sl, lw.ar.Assign(il.Assign{Dst: lw.ar.VarRef(addrTmp, addrT), Src: res.e}))
	loadOld := lw.ar.Load(lw.ar.VarRef(addrTmp, addrT), t, vol)
	valTmp := lw.proc.NewTemp(t)
	sl = append(sl, lw.ar.Assign(il.Assign{Dst: lw.ar.VarRef(valTmp, t), Src: loadOld}))
	newVal := il.NewBinIn(lw.ar, op, lw.ar.VarRef(valTmp, t), delta, t)
	sl = append(sl, lw.ar.Assign(il.Assign{
		Dst: lw.ar.Load(lw.ar.VarRef(addrTmp, addrT), t, vol),
		Src: newVal,
	}))
	if !needValue {
		return sl, nil, nil
	}
	if isPost {
		return sl, lw.ar.VarRef(valTmp, t), nil
	}
	resTmp := lw.proc.NewTemp(t)
	sl = append(sl, lw.ar.Assign(il.Assign{Dst: lw.ar.VarRef(resTmp, t), Src: il.NewBinIn(lw.ar, op, lw.ar.VarRef(valTmp, t), delta, t)}))
	return sl, lw.ar.VarRef(resTmp, t), nil
}

// simpleVar reports whether e is a direct reference to a scalar variable.
func (lw *lowerer) simpleVar(e ast.Expr) (il.VarID, bool) {
	id, ok := e.(*ast.IdentExpr)
	if !ok {
		return il.NoVar, false
	}
	sym := lw.info.Uses[id]
	if sym == nil || sym.Kind == sema.SymFunc {
		return il.NoVar, false
	}
	if sym.Type.Kind == ctype.Array || sym.Type.IsAggregate() {
		return il.NoVar, false
	}
	return lw.varID(sym), true
}

var binOpMap = map[ast.BinOp]il.Op{
	ast.Add: il.OpAdd, ast.Sub: il.OpSub, ast.Mul: il.OpMul, ast.Div: il.OpDiv,
	ast.Rem: il.OpRem, ast.And: il.OpAnd, ast.Or: il.OpOr, ast.Xor: il.OpXor,
	ast.Shl: il.OpShl, ast.Shr: il.OpShr,
	ast.Eq: il.OpEq, ast.Ne: il.OpNe, ast.Lt: il.OpLt, ast.Gt: il.OpGt,
	ast.Le: il.OpLe, ast.Ge: il.OpGe,
}

func (lw *lowerer) binary(n *ast.BinaryExpr) ([]il.Stmt, il.Expr, error) {
	if n.Op == ast.LogAnd || n.Op == ast.LogOr {
		return lw.logical(n)
	}
	lSL, lE, err := lw.expr(n.L)
	if err != nil {
		return nil, nil, err
	}
	rSL, rE, err := lw.expr(n.R)
	if err != nil {
		return nil, nil, err
	}
	sl := append(lSL, rSL...)
	lt := n.L.Type().Decay()
	rt := n.R.Type().Decay()
	op := binOpMap[n.Op]

	// Pointer arithmetic in bytes.
	if n.Op == ast.Add || n.Op == ast.Sub {
		switch {
		case lt.Kind == ctype.Pointer && rt.IsInteger():
			off := lw.mulC(lw.intC(scale(lt)), rE, ctype.IntType)
			return sl, il.NewBinIn(lw.ar, op, lE, off, lt), nil
		case rt.Kind == ctype.Pointer && lt.IsInteger() && n.Op == ast.Add:
			off := lw.mulC(lw.intC(scale(rt)), lE, ctype.IntType)
			return sl, il.NewBinIn(lw.ar, op, rE, off, rt), nil
		case lt.Kind == ctype.Pointer && rt.Kind == ctype.Pointer && n.Op == ast.Sub:
			diff := il.NewBinIn(lw.ar, il.OpSub, lE, rE, ctype.IntType)
			return sl, il.NewBinIn(lw.ar, il.OpDiv, diff, lw.intC(scale(lt)), ctype.IntType), nil
		}
	}

	if op.IsComparison() {
		common := ctype.Common(lt, rt)
		return sl, il.NewBinIn(lw.ar, op, lw.coerce(lE, common), lw.coerce(rE, common), ctype.IntType), nil
	}
	t := n.Type()
	return sl, il.NewBinIn(lw.ar, op, lw.coerce(lE, t), lw.coerce(rE, t), t), nil
}

// logical lowers && and || into an If assigning a temp, since the IL has no
// short-circuit operators (§4).
func (lw *lowerer) logical(n *ast.BinaryExpr) ([]il.Stmt, il.Expr, error) {
	lSL, lE, err := lw.cond(n.L)
	if err != nil {
		return nil, nil, err
	}
	rSL, rE, err := lw.cond(n.R)
	if err != nil {
		return nil, nil, err
	}
	tmp := lw.proc.NewTemp(ctype.IntType)
	bool01 := func(e il.Expr) il.Expr {
		// Normalize to 0/1 as C requires.
		if b, ok := e.(*il.Bin); ok && b.Op.IsComparison() {
			return e
		}
		return il.NewBinIn(lw.ar, il.OpNe, e, lw.intC(0), ctype.IntType)
	}
	set := func(e il.Expr) il.Stmt {
		return lw.ar.Assign(il.Assign{Dst: lw.ar.VarRef(tmp, ctype.IntType), Src: bool01(e)})
	}
	inner := append(rSL, set(rE))
	var out []il.Stmt
	out = append(out, lSL...)
	if n.Op == ast.LogAnd {
		out = append(out, set(lw.intC(0)), lw.ar.If(il.If{Cond: lE, Then: inner}))
	} else {
		out = append(out, set(lw.intC(1)), lw.ar.If(il.If{Cond: il.NewUnIn(lw.ar, il.OpNot, lE, ctype.IntType), Then: inner}))
	}
	return out, lw.ar.VarRef(tmp, ctype.IntType), nil
}

// condExpr lowers ?: into an If assigning a temp.
func (lw *lowerer) condExpr(n *ast.CondExpr) ([]il.Stmt, il.Expr, error) {
	cSL, cE, err := lw.cond(n.Cond)
	if err != nil {
		return nil, nil, err
	}
	t := n.Type()
	tmp := lw.proc.NewTemp(t)
	tSL, tE, err := lw.expr(n.Then)
	if err != nil {
		return nil, nil, err
	}
	eSL, eE, err := lw.expr(n.Else)
	if err != nil {
		return nil, nil, err
	}
	then := append(tSL, lw.ar.Assign(il.Assign{Dst: lw.ar.VarRef(tmp, t), Src: lw.coerce(tE, t)}))
	els := append(eSL, lw.ar.Assign(il.Assign{Dst: lw.ar.VarRef(tmp, t), Src: lw.coerce(eE, t)}))
	out := append(cSL, lw.ar.If(il.If{Cond: cE, Then: then, Else: els}))
	return out, lw.ar.VarRef(tmp, t), nil
}

// assign lowers an assignment for effect only.
func (lw *lowerer) assign(n *ast.AssignExpr, needValue bool) ([]il.Stmt, error) {
	sl, _, err := lw.assignCommon(n, needValue)
	return sl, err
}

// assignForValue lowers an assignment whose value is consumed: the paper's
// temp scheme guarantees the LHS is written once and never read.
func (lw *lowerer) assignForValue(n *ast.AssignExpr) ([]il.Stmt, il.Expr, error) {
	return lw.assignCommon(n, true)
}

func (lw *lowerer) assignCommon(n *ast.AssignExpr, needValue bool) ([]il.Stmt, il.Expr, error) {
	lt := n.L.Type()
	rSL, rE, err := lw.expr(n.R)
	if err != nil {
		return nil, nil, err
	}

	// Compound assignment reads the LHS once: L = L op R.
	makeRHS := func(cur il.Expr) il.Expr {
		if n.Op == nil {
			return lw.coerce(rE, lt)
		}
		op := binOpMap[*n.Op]
		// Pointer compound assignment scales.
		if lt.Decay().Kind == ctype.Pointer {
			off := lw.mulC(lw.intC(scale(lt)), rE, ctype.IntType)
			return il.NewBinIn(lw.ar, op, cur, off, lt.Decay())
		}
		common := ctype.Common(lt.Decay(), n.R.Type().Decay())
		v := il.NewBinIn(lw.ar, op, lw.coerce(cur, common), lw.coerce(rE, common), common)
		return lw.coerce(v, lt)
	}

	if id, simple := lw.simpleVar(n.L); simple {
		vref := lw.ar.VarRef(id, lw.proc.Vars[id].Type)
		var sl []il.Stmt
		sl = append(sl, rSL...)
		if !needValue {
			sl = append(sl, lw.ar.Assign(il.Assign{Dst: vref, Src: makeRHS(il.CloneExprIn(lw.ar, vref))}))
			return sl, nil, nil
		}
		// t = RHS; v = t; value t — writes v once, never reads it.
		tmp := lw.proc.NewTemp(lt)
		sl = append(sl, lw.ar.Assign(il.Assign{Dst: lw.ar.VarRef(tmp, lt), Src: makeRHS(il.CloneExprIn(lw.ar, vref))}))
		sl = append(sl, lw.ar.Assign(il.Assign{Dst: vref, Src: lw.ar.VarRef(tmp, lt)}))
		return sl, lw.ar.VarRef(tmp, lt), nil
	}

	res, vol, err := lw.lvalueAddr(n.L)
	if err != nil {
		return nil, nil, err
	}
	sl := res.sl
	sl = append(sl, rSL...)
	addr := res.e
	vol = vol || lt.Volatile
	if n.Op != nil || needValue {
		// Pin the address in a temp so reads and the write agree.
		addrT := ctype.PointerTo(lt)
		at := lw.proc.NewTemp(addrT)
		sl = append(sl, lw.ar.Assign(il.Assign{Dst: lw.ar.VarRef(at, addrT), Src: addr}))
		addr = lw.ar.VarRef(at, addrT)
	}
	cur := lw.ar.Load(il.CloneExprIn(lw.ar, addr), lt, vol)
	if !needValue {
		sl = append(sl, lw.ar.Assign(il.Assign{
			Dst: lw.ar.Load(addr, lt, vol),
			Src: makeRHS(cur),
		}))
		return sl, nil, nil
	}
	tmp := lw.proc.NewTemp(lt)
	sl = append(sl, lw.ar.Assign(il.Assign{Dst: lw.ar.VarRef(tmp, lt), Src: makeRHS(cur)}))
	sl = append(sl, lw.ar.Assign(il.Assign{
		Dst: lw.ar.Load(addr, lt, vol),
		Src: lw.ar.VarRef(tmp, lt),
	}))
	return sl, lw.ar.VarRef(tmp, lt), nil
}

// call lowers a function call to a Call statement.
func (lw *lowerer) call(n *ast.CallExpr, needValue bool) ([]il.Stmt, il.Expr, error) {
	var sl []il.Stmt
	var args []il.Expr
	ft := n.Fun.Type()
	if ft.Kind == ctype.Pointer {
		ft = ft.Elem
	}
	for i, a := range n.Args {
		aSL, aE, err := lw.expr(a)
		if err != nil {
			return nil, nil, err
		}
		sl = append(sl, aSL...)
		if !ft.OldStyle && i < len(ft.Params) {
			aE = lw.coerce(aE, ft.Params[i].Type)
		} else if a.Type().Decay().Kind == ctype.Float {
			// Default argument promotion: float → double.
			aE = lw.coerce(aE, ctype.DoubleType)
		}
		args = append(args, aE)
	}
	dst := il.NoVar
	var result il.Expr
	retT := ft.Ret
	if needValue && retT.Kind != ctype.Void {
		dst = lw.proc.NewTemp(retT)
		result = lw.ar.VarRef(dst, retT)
	}
	call := &il.Call{Dst: dst, Args: args, T: retT}
	if id, ok := n.Fun.(*ast.IdentExpr); ok {
		sym := lw.info.Uses[id]
		if sym != nil && sym.Kind == sema.SymFunc {
			call.Callee = sym.Name
		}
	}
	if call.Callee == "" {
		fSL, fE, err := lw.expr(n.Fun)
		if err != nil {
			return nil, nil, err
		}
		sl = append(sl, fSL...)
		call.FunPtr = fE
	}
	sl = append(sl, call)
	return sl, result, nil
}

// coerce inserts a cast when e's IL type kind differs from the target.
func (lw *lowerer) coerce(e il.Expr, to *ctype.Type) il.Expr {
	if e == nil || to == nil {
		return e
	}
	from := e.Type()
	if from == nil {
		return e
	}
	to = to.Decay()
	from = from.Decay()
	// Integer kinds are interchangeable in the IL (one register width).
	if from.IsInteger() && to.IsInteger() {
		return e
	}
	if from.Kind == ctype.Pointer && to.Kind == ctype.Pointer {
		return e
	}
	if from.Kind == to.Kind {
		return e
	}
	if from.Kind == ctype.Pointer && to.IsInteger() || from.IsInteger() && to.Kind == ctype.Pointer {
		return e // same word
	}
	return il.NewCastIn(lw.ar, e, to)
}
