package sema

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/ctype"
	"repro/internal/parser"
)

func check(t *testing.T, src string) (*ast.File, *Info) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Check(f)
	if err != nil {
		t.Fatalf("sema: %v\nsource:\n%s", err, src)
	}
	return f, info
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(f)
	if err == nil {
		t.Fatalf("expected error containing %q, got none\nsource:\n%s", wantSub, src)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSub)
	}
}

func TestResolvesGlobalsAndLocals(t *testing.T) {
	src := `
int g;
void f(int p) {
	int l;
	l = p + g;
}
`
	f, info := check(t, src)
	body := f.Funcs[0].Body
	assign := body.List[1].(*ast.ExprStmt).X.(*ast.AssignExpr)
	add := assign.R.(*ast.BinaryExpr)
	p := info.Uses[add.L.(*ast.IdentExpr)]
	g := info.Uses[add.R.(*ast.IdentExpr)]
	if p.Kind != SymParam || g.Kind != SymGlobal {
		t.Errorf("kinds: p=%v g=%v", p.Kind, g.Kind)
	}
}

func TestShadowing(t *testing.T) {
	src := `
int x;
void f(void) {
	float x;
	x = 1.5;
	{
		char x;
		x = 'a';
	}
}
`
	f, info := check(t, src)
	outer := f.Funcs[0].Body.List[1].(*ast.ExprStmt).X.(*ast.AssignExpr)
	sym := info.Uses[outer.L.(*ast.IdentExpr)]
	if sym.Type.Kind != ctype.Float {
		t.Errorf("outer x resolves to %s", sym.Type)
	}
}

func TestTypeAnnotation(t *testing.T) {
	src := `
float v[100];
float f(int i) { return v[i] * 2.0f; }
`
	f, _ := check(t, src)
	ret := f.Funcs[0].Body.List[0].(*ast.ReturnStmt)
	mul := ret.X.(*ast.BinaryExpr)
	if mul.Type().Kind != ctype.Float {
		t.Errorf("v[i]*2.0f type %s", mul.Type())
	}
	if mul.L.Type().Kind != ctype.Float {
		t.Errorf("v[i] type %s", mul.L.Type())
	}
}

func TestPointerArithmeticTypes(t *testing.T) {
	src := `
void f(float *p, int i) {
	float x;
	x = *(p + i);
	p = p + 1;
}
`
	f, _ := check(t, src)
	as := f.Funcs[0].Body.List[1].(*ast.ExprStmt).X.(*ast.AssignExpr)
	deref := as.R.(*ast.UnaryExpr)
	if deref.Type().Kind != ctype.Float {
		t.Errorf("*(p+i) type %s", deref.Type())
	}
	inner := deref.X.(*ast.BinaryExpr)
	if inner.Type().Kind != ctype.Pointer {
		t.Errorf("p+i type %s", inner.Type())
	}
}

func TestArrayDecayInCall(t *testing.T) {
	check(t, `
void daxpy(float *x, float *y, float a, int n);
void g(void) {
	float a[10], b[10];
	daxpy(a, b, 2.0, 10);
}
`)
}

func TestPtrDiffIsInt(t *testing.T) {
	src := "int f(float *a, float *b) { return a - b; }"
	check(t, src)
}

func TestAddrTaken(t *testing.T) {
	src := `
void f(void) {
	int x, y;
	int *p;
	p = &x;
	y = x;
}
`
	f, info := check(t, src)
	decls := f.Funcs[0].Body.List[0].(*ast.DeclStmt)
	xSym := info.Decls[decls.Decls[0]]
	ySym := info.Decls[decls.Decls[1]]
	if !xSym.AddrTaken {
		t.Error("x should be addr-taken")
	}
	if ySym.AddrTaken {
		t.Error("y should not be addr-taken")
	}
}

func TestAddrOfSubscriptMarksArray(t *testing.T) {
	// &x[1] (the backsolve idiom) marks x.
	src := "void f(void) { float x[10]; float *p; p = &x[1]; }"
	f, info := check(t, src)
	decls := f.Funcs[0].Body.List[0].(*ast.DeclStmt)
	if !info.Decls[decls.Decls[0]].AddrTaken {
		t.Error("x should be addr-taken via &x[1]")
	}
}

func TestStaticLocalMangled(t *testing.T) {
	src := "int counter(void) { static int n; n = n + 1; return n; }"
	f, info := check(t, src)
	d := f.Funcs[0].Body.List[0].(*ast.DeclStmt).Decls[0]
	sym := info.Decls[d]
	if sym.Kind != SymStaticLocal || sym.MangledName != "counter.n" {
		t.Errorf("static local: kind=%v mangled=%q", sym.Kind, sym.MangledName)
	}
}

func TestMemberTypes(t *testing.T) {
	src := `
struct point { float x, y; };
float f(struct point *p, struct point q) { return p->x + q.y; }
`
	check(t, src)
}

func TestPrototypeThenDefinition(t *testing.T) {
	src := `
int twice(int);
int caller(void) { return twice(21); }
int twice(int x) { return x + x; }
`
	check(t, src)
}

func TestImplicitFunctionDecl(t *testing.T) {
	// K&R-style call to an undeclared function defaults to int().
	src := "int f(void) { return undeclared_fn(1, 2); }"
	check(t, src)
}

func TestVolatilePropagates(t *testing.T) {
	src := `
volatile int status;
int f(void) { return status; }
`
	f, _ := check(t, src)
	ret := f.Funcs[0].Body.List[0].(*ast.ReturnStmt)
	if !ret.X.Type().Volatile {
		t.Error("use of volatile variable should carry volatile type")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"int f(void) { return x; }", "undeclared"},
		{"int f(void) { 1 = 2; return 0; }", "non-lvalue"},
		{"void f(void) { return 1; }", "void function"},
		{"int f(void) { return; }", "without value"},
		{"int f(int x) { return *x; }", "non-pointer"},
		{"int f(int x) { return x.y; }", "non-aggregate"},
		{"struct p { int a; }; int f(struct p q) { return q.b; }", "no field"},
		{"int f(void) { break; return 0; }", "break outside"},
		{"int f(void) { continue; return 0; }", "continue outside"},
		{"int f(void) { goto nowhere; return 0; }", "undefined label"},
		{"int f(void) { x: goto x; x: return 0; }", "duplicate label"},
		{"void g(int); void f(void) { g(1, 2); }", "arguments"},
		{"int f(float p) { switch (p) { default: ; } return 0; }", "switch expression"},
		{"void f(void) { case 1: ; }", "case label outside"},
		{"int f(float *p) { return p % 3; }", "invalid operands"},
		{"void f(void) { int a[3]; int b[3]; a = b; }", "array"},
		{"int f(const int c) { c = 1; return c; }", "const"},
		{"int f(void) { return f + 1; }", "cannot return"},
	}
	for _, c := range cases {
		checkErr(t, c.src, c.want)
	}
}

func TestCondExprTypes(t *testing.T) {
	src := "float f(int c, float a, float b) { return c ? a : b; }"
	f, _ := check(t, src)
	ret := f.Funcs[0].Body.List[0].(*ast.ReturnStmt)
	if ret.X.Type().Kind != ctype.Float {
		t.Errorf("?: type %s", ret.X.Type())
	}
}

func TestCommaType(t *testing.T) {
	src := "int f(int a) { return (a = 1, a + 1); }"
	f, _ := check(t, src)
	ret := f.Funcs[0].Body.List[0].(*ast.ReturnStmt)
	if ret.X.Type().Kind != ctype.Int {
		t.Errorf("comma type %s", ret.X.Type())
	}
}

func TestCompoundAssignTypes(t *testing.T) {
	check(t, "void f(int n) { n += 2; n <<= 1; n %= 3; }")
	checkErr(t, "void f(float x) { x %= 3.0; }", "invalid operands")
}

func TestIncDecOnPointers(t *testing.T) {
	check(t, "void f(float *p) { p++; ++p; p--; }")
	checkErr(t, "struct s {int a;}; void f(struct s q) { q++; }", "post++")
}

func TestMoreErrorPaths(t *testing.T) {
	cases := []struct{ src, want string }{
		{"int f(void) { return (1,2) ? 3 : f; }", "incompatible types"},
		{"struct s { int a; }; int f(struct s q) { return q ? 1 : 0; }", "scalar"},
		{"struct s { int a; }; int f(struct s q) { while (q) ; return 0; }", "scalar"},
		{"struct s { int a; }; int f(struct s q) { return !q; }", "non-scalar"},
		{"struct s { int a; }; int f(struct s q) { return -q; }", "non-arithmetic"},
		{"int f(float x) { return ~x; }", "non-integer"},
		{"struct s { int a; }; int f(struct s q, struct s r) { return q && r; }", "non-scalar"},
		{"struct s { int a; }; int f(struct s q, struct s r) { return q < r; }", "non-scalar"},
		{"struct s { int a; }; int f(struct s q) { return q + 1; }", "invalid operands"},
		{"struct s { int a; }; int f(struct s q) { return q - 1; }", "invalid operands"},
		{"struct s { int a; }; int f(struct s q) { return q * 2; }", "invalid operands"},
		{"int f(int x) { return x(); }", "not a function"},
		{"void g(int); int f(void) { g(1.5f); return 0; }", ""},
		{"int f(void) { int x; return sizeof(x = 1); }", ""},
	}
	for _, c := range cases {
		if c.want == "" {
			check(t, c.src)
			continue
		}
		checkErr(t, c.src, c.want)
	}
}

func TestGlobalInitChecked(t *testing.T) {
	checkErr(t, "int g = h;", "undeclared")
}

func TestVoidFuncReturnTypeUse(t *testing.T) {
	// A void call's "value" cannot feed arithmetic.
	checkErr(t, "void g(void); int f(void) { return g() + 1; }", "invalid operands")
}

func TestParamMissingNameInDefinition(t *testing.T) {
	checkErr(t, "int f(int) { return 0; }", "missing name")
}

func TestPrototypeConflictPrefersDefinition(t *testing.T) {
	// After the definition appears, calls use the defined signature.
	src := `
int g();
int g(int a, int b) { return a + b; }
int f(void) { return g(1, 2); }
`
	check(t, src)
}

func TestIndexSwappedForm(t *testing.T) {
	// C allows 3[arr].
	check(t, "int arr[10]; int f(void) { return 3[arr]; }")
	checkErr(t, "int f(int a, int b) { return a[b]; }", "not array or pointer")
	checkErr(t, "float x; int arr[4]; int f(void) { return arr[x]; }", "not an integer")
}

func TestCharLiteralAndPromotion(t *testing.T) {
	src := `
int f(char c, short s) { return c + s; }
int g(void) { return 'A' + 1; }
`
	file, _ := check(t, src)
	_ = file
}
