// Package sema performs name resolution and type checking over the AST.
//
// It annotates every expression with its C type (after the usual
// conversions), binds identifier uses to symbols, verifies call signatures
// against prototypes, enforces lvalue and scalar-context rules, and records
// which variables have their address taken (needed for register allocation
// and alias analysis downstream).
package sema

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ctype"
	"repro/internal/token"
	"repro/internal/workpool"
)

// Error is a semantic error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// SymKind classifies symbols.
type SymKind int

// Symbol kinds.
const (
	SymGlobal SymKind = iota
	SymFunc
	SymParam
	SymLocal
	SymStaticLocal
)

// Symbol is a named program entity.
type Symbol struct {
	Name    string
	Type    *ctype.Type
	Kind    SymKind
	Storage ast.StorageClass
	// AddrTaken is set when & is applied to the symbol.
	AddrTaken bool
	// MangledName distinguishes function-static locals promoted to
	// globals ("func.name"), per the paper's catalog requirement (§7).
	MangledName string
}

// Info is the result of checking a file.
type Info struct {
	// Uses binds each identifier expression to its symbol.
	Uses map[*ast.IdentExpr]*Symbol
	// Decls binds each declaration to its symbol.
	Decls map[*ast.VarDecl]*Symbol
	// Funcs binds function declarations to symbols.
	Funcs map[*ast.FuncDecl]*Symbol
	// ParamSyms lists, for each function definition, the parameter symbols
	// in order.
	ParamSyms map[*ast.FuncDecl][]*Symbol
}

type checker struct {
	info   *Info
	scopes []map[string]*Symbol
	// current function context
	curFunc     *ast.FuncDecl
	loopDepth   int
	switchDepth int
	labels      map[string]bool // labels defined in current function
	gotos       []gotoRef

	// Parallel mode (CheckWorkers): par routes the two shared-state writes
	// a function check can make into private buffers. overlay holds K&R
	// implicit function declarations instead of scopes[0]; took records
	// address-taken symbols instead of setting Symbol.AddrTaken, applied
	// post-join. Both stay nil/empty under serial checking.
	par     bool
	overlay map[string]*Symbol
	took    []*Symbol
}

type gotoRef struct {
	pos   token.Pos
	label string
}

// Check resolves and type-checks a file.
func Check(f *ast.File) (*Info, error) { return CheckWorkers(f, 1) }

// CheckWorkers is Check with up to `workers` function bodies checking
// concurrently on the pass worker pool (1 checks serially). Results are
// bit-identical to serial checking: function checks are independent given
// the file-scope table, the two cross-function effects (K&R implicit
// declarations, Symbol.AddrTaken) are buffered per worker, and any error
// or implicit declaration falls back to one serial re-check so error
// selection matches the serial order exactly.
func CheckWorkers(f *ast.File, workers int) (*Info, error) {
	if workers <= 1 {
		return checkSerial(f)
	}
	c, err := fileScopeCheck(f)
	if err != nil {
		// File-scope checking is the serial prefix; its errors are already
		// the serial ones.
		return nil, err
	}
	var defs []*ast.FuncDecl
	for _, fn := range f.Funcs {
		if fn.Body != nil {
			defs = append(defs, fn)
		}
	}
	subs := make([]*checker, len(defs))
	errs := make([]error, len(defs))
	fileScope := c.scopes[0]
	workpool.ForEachN(len(defs), workers, func(i int) {
		sc := &checker{
			info: &Info{
				Uses:      map[*ast.IdentExpr]*Symbol{},
				Decls:     map[*ast.VarDecl]*Symbol{},
				Funcs:     map[*ast.FuncDecl]*Symbol{},
				ParamSyms: map[*ast.FuncDecl][]*Symbol{},
			},
			// The shared file scope is read-only here: declare() writes the
			// pushed function scope, and call()'s implicit declarations go
			// to the overlay.
			scopes:  []map[string]*Symbol{fileScope},
			par:     true,
			overlay: map[string]*Symbol{},
		}
		subs[i] = sc
		errs[i] = sc.checkFunc(defs[i])
	})
	for i := range defs {
		if errs[i] != nil || len(subs[i].overlay) != 0 {
			// An error must be reported exactly as the serial checker
			// would (it stops at the first failing function in order); an
			// implicit K&R declaration is visible to every *later*
			// function serially, which the isolated workers cannot see.
			// Both are rare: re-check serially and return that result.
			return checkSerial(f)
		}
	}
	// Deterministic merge in function order.
	for _, sc := range subs {
		for k, v := range sc.info.Uses {
			c.info.Uses[k] = v
		}
		for k, v := range sc.info.Decls {
			c.info.Decls[k] = v
		}
		for k, v := range sc.info.ParamSyms {
			c.info.ParamSyms[k] = v
		}
		for _, sym := range sc.took {
			sym.AddrTaken = true
		}
	}
	return c.info, nil
}

// checkSerial is the classic single-threaded check: the differential
// baseline CheckWorkers must match bit for bit.
func checkSerial(f *ast.File) (*Info, error) {
	c, err := fileScopeCheck(f)
	if err != nil {
		return nil, err
	}
	for _, fn := range f.Funcs {
		if fn.Body == nil {
			continue
		}
		if err := c.checkFunc(fn); err != nil {
			return nil, err
		}
	}
	return c.info, nil
}

// fileScopeCheck runs the serial file-scope prefix: declaring every
// file-scope name (so forward references work) and checking global
// initializers.
func fileScopeCheck(f *ast.File) (*checker, error) {
	c := &checker{
		info: &Info{
			Uses:      map[*ast.IdentExpr]*Symbol{},
			Decls:     map[*ast.VarDecl]*Symbol{},
			Funcs:     map[*ast.FuncDecl]*Symbol{},
			ParamSyms: map[*ast.FuncDecl][]*Symbol{},
		},
		scopes: []map[string]*Symbol{{}},
	}
	// Pass 1: declare all file-scope names so forward references work.
	for _, g := range f.Globals {
		sym := &Symbol{Name: g.Name, Type: g.Type, Kind: SymGlobal, Storage: g.Storage}
		c.scopes[0][g.Name] = sym
		c.info.Decls[g] = sym
	}
	for _, fn := range f.Funcs {
		if prev, ok := c.scopes[0][fn.Name]; ok && prev.Kind == SymFunc {
			// Prototype followed by definition: prefer the definition's
			// type if it has named parameters.
			if fn.Body != nil {
				prev.Type = fn.Type
			}
			c.info.Funcs[fn] = prev
			continue
		}
		sym := &Symbol{Name: fn.Name, Type: fn.Type, Kind: SymFunc, Storage: fn.Storage}
		c.scopes[0][fn.Name] = sym
		c.info.Funcs[fn] = sym
	}
	// Pass 2 (file-scope half): check global initializers.
	for _, g := range f.Globals {
		if g.Init != nil {
			if _, err := c.expr(g.Init); err != nil {
				return nil, err
			}
		}
		if g.InitList != nil {
			if err := c.checkInitList(g); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, sym *Symbol) { c.scopes[len(c.scopes)-1][name] = sym }

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	// The overlay extends the file scope in parallel mode (K&R implicit
	// declarations made by this worker); locals above already shadow it.
	if c.overlay != nil {
		return c.overlay[name]
	}
	return nil
}

func errf(pos token.Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) checkFunc(fn *ast.FuncDecl) error {
	c.curFunc = fn
	c.labels = map[string]bool{}
	c.gotos = nil
	c.push()
	defer c.pop()
	var params []*Symbol
	for _, p := range fn.Type.Params {
		if p.Name == "" {
			return errf(fn.Pos(), "%s: parameter missing name in definition", fn.Name)
		}
		sym := &Symbol{Name: p.Name, Type: p.Type, Kind: SymParam}
		c.declare(p.Name, sym)
		params = append(params, sym)
	}
	c.info.ParamSyms[fn] = params
	if err := c.stmt(fn.Body); err != nil {
		return err
	}
	for _, g := range c.gotos {
		if !c.labels[g.label] {
			return errf(g.pos, "goto undefined label %q", g.label)
		}
	}
	return nil
}

// --------------------------------------------------------------- statements

func (c *checker) stmt(s ast.Stmt) error {
	switch n := s.(type) {
	case *ast.CompoundStmt:
		c.push()
		defer c.pop()
		for _, sub := range n.List {
			if err := c.stmt(sub); err != nil {
				return err
			}
		}
	case *ast.DeclStmt:
		for _, d := range n.Decls {
			kind := SymLocal
			mangled := ""
			if d.Storage == ast.SCStatic {
				kind = SymStaticLocal
				mangled = c.curFunc.Name + "." + d.Name
			}
			sym := &Symbol{Name: d.Name, Type: d.Type, Kind: kind,
				Storage: d.Storage, MangledName: mangled}
			c.declare(d.Name, sym)
			c.info.Decls[d] = sym
			if d.Init != nil {
				it, err := c.expr(d.Init)
				if err != nil {
					return err
				}
				if !ctype.Compatible(d.Type.Decay(), it.Decay()) {
					return errf(d.Pos(), "cannot initialize %s with %s", d.Type, it)
				}
			}
			if d.InitList != nil {
				if err := c.checkInitList(d); err != nil {
					return err
				}
			}
		}
	case *ast.ExprStmt:
		_, err := c.expr(n.X)
		return err
	case *ast.IfStmt:
		if err := c.scalarCond(n.Cond); err != nil {
			return err
		}
		if err := c.stmt(n.Then); err != nil {
			return err
		}
		if n.Else != nil {
			return c.stmt(n.Else)
		}
	case *ast.WhileStmt:
		if err := c.scalarCond(n.Cond); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.stmt(n.Body)
	case *ast.DoWhileStmt:
		c.loopDepth++
		err := c.stmt(n.Body)
		c.loopDepth--
		if err != nil {
			return err
		}
		return c.scalarCond(n.Cond)
	case *ast.ForStmt:
		if n.Init != nil {
			if _, err := c.expr(n.Init); err != nil {
				return err
			}
		}
		if n.Cond != nil {
			if err := c.scalarCond(n.Cond); err != nil {
				return err
			}
		}
		if n.Post != nil {
			if _, err := c.expr(n.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.stmt(n.Body)
	case *ast.ReturnStmt:
		ret := c.curFunc.Type.Ret
		if n.X == nil {
			if ret.Kind != ctype.Void {
				return errf(n.Pos(), "%s: return without value", c.curFunc.Name)
			}
			return nil
		}
		t, err := c.expr(n.X)
		if err != nil {
			return err
		}
		if ret.Kind == ctype.Void {
			return errf(n.Pos(), "%s: return with value in void function", c.curFunc.Name)
		}
		if !ctype.Compatible(ret, t.Decay()) {
			return errf(n.Pos(), "cannot return %s as %s", t, ret)
		}
	case *ast.BreakStmt:
		if c.loopDepth == 0 && c.switchDepth == 0 {
			return errf(n.Pos(), "break outside loop or switch")
		}
	case *ast.ContinueStmt:
		if c.loopDepth == 0 {
			return errf(n.Pos(), "continue outside loop")
		}
	case *ast.GotoStmt:
		c.gotos = append(c.gotos, gotoRef{n.Pos(), n.Label})
	case *ast.LabeledStmt:
		if c.labels[n.Label] {
			return errf(n.Pos(), "duplicate label %q", n.Label)
		}
		c.labels[n.Label] = true
		return c.stmt(n.Stmt)
	case *ast.SwitchStmt:
		t, err := c.expr(n.Tag)
		if err != nil {
			return err
		}
		if !t.IsInteger() {
			return errf(n.Pos(), "switch expression must be integer, have %s", t)
		}
		c.switchDepth++
		defer func() { c.switchDepth-- }()
		return c.stmt(n.Body)
	case *ast.CaseStmt:
		if c.switchDepth == 0 {
			return errf(n.Pos(), "case label outside switch")
		}
		if n.Value != nil {
			if _, err := c.expr(n.Value); err != nil {
				return err
			}
		}
		return c.stmt(n.Stmt)
	case *ast.EmptyStmt, *ast.PragmaStmt:
	default:
		return errf(s.Pos(), "unhandled statement %T", s)
	}
	return nil
}

// checkInitList validates a brace initializer against the declared type's
// flattened scalar cells.
func (c *checker) checkInitList(d *ast.VarDecl) error {
	if !d.Type.IsAggregate() && d.Type.Kind != ctype.Array {
		if len(d.InitList) != 1 {
			return errf(d.Pos(), "scalar %s initialized with %d values", d.Name, len(d.InitList))
		}
	}
	cells := ctype.ScalarCells(d.Type)
	if len(d.InitList) > len(cells) {
		return errf(d.Pos(), "too many initializers for %s (%d > %d)", d.Name, len(d.InitList), len(cells))
	}
	for i, e := range d.InitList {
		et, err := c.expr(e)
		if err != nil {
			return err
		}
		if !ctype.Compatible(cells[i].Type, et.Decay()) {
			return errf(e.Pos(), "initializer %d: cannot use %s as %s", i+1, et, cells[i].Type)
		}
	}
	return nil
}

func (c *checker) scalarCond(e ast.Expr) error {
	t, err := c.expr(e)
	if err != nil {
		return err
	}
	if !t.Decay().IsScalar() {
		return errf(e.Pos(), "condition must be scalar, have %s", t)
	}
	return nil
}

// --------------------------------------------------------------- expressions

type typeSetter interface{ SetType(*ctype.Type) }

func setT(e ast.Expr, t *ctype.Type) *ctype.Type {
	if s, ok := e.(typeSetter); ok {
		s.SetType(t)
	}
	return t
}

func (c *checker) expr(e ast.Expr) (*ctype.Type, error) {
	switch n := e.(type) {
	case *ast.IntConst:
		return setT(e, ctype.IntType), nil
	case *ast.FloatConst:
		if n.Type() != nil {
			return n.Type(), nil
		}
		return setT(e, ctype.DoubleType), nil
	case *ast.StrConst:
		return setT(e, ctype.PointerTo(ctype.CharType)), nil
	case *ast.IdentExpr:
		sym := c.lookup(n.Name)
		if sym == nil {
			return nil, errf(n.Pos(), "undeclared identifier %q", n.Name)
		}
		c.info.Uses[n] = sym
		return setT(e, sym.Type), nil
	case *ast.UnaryExpr:
		return c.unary(n)
	case *ast.BinaryExpr:
		return c.binary(n)
	case *ast.AssignExpr:
		return c.assign(n)
	case *ast.CondExpr:
		if err := c.scalarCond(n.Cond); err != nil {
			return nil, err
		}
		tt, err := c.expr(n.Then)
		if err != nil {
			return nil, err
		}
		et, err := c.expr(n.Else)
		if err != nil {
			return nil, err
		}
		if !ctype.Compatible(tt.Decay(), et.Decay()) {
			return nil, errf(n.Pos(), "?: branches have incompatible types %s and %s", tt, et)
		}
		return setT(e, ctype.Common(tt.Decay(), et.Decay())), nil
	case *ast.CommaExpr:
		if _, err := c.expr(n.L); err != nil {
			return nil, err
		}
		rt, err := c.expr(n.R)
		if err != nil {
			return nil, err
		}
		return setT(e, rt), nil
	case *ast.CallExpr:
		return c.call(n)
	case *ast.IndexExpr:
		xt, err := c.expr(n.X)
		if err != nil {
			return nil, err
		}
		it, err := c.expr(n.Index)
		if err != nil {
			return nil, err
		}
		base := xt.Decay()
		// C allows i[a] as well as a[i].
		if base.Kind != ctype.Pointer && it.Decay().Kind == ctype.Pointer {
			base, it = it.Decay(), base
		}
		if base.Kind != ctype.Pointer {
			return nil, errf(n.Pos(), "subscripted value is not array or pointer (type %s)", xt)
		}
		if !it.IsInteger() {
			return nil, errf(n.Pos(), "array subscript is not an integer (type %s)", it)
		}
		return setT(e, base.Elem), nil
	case *ast.MemberExpr:
		xt, err := c.expr(n.X)
		if err != nil {
			return nil, err
		}
		st := xt
		if n.Arrow {
			if xt.Decay().Kind != ctype.Pointer {
				return nil, errf(n.Pos(), "-> applied to non-pointer %s", xt)
			}
			st = xt.Decay().Elem
		}
		if !st.IsAggregate() {
			return nil, errf(n.Pos(), "member access on non-aggregate %s", st)
		}
		f := st.Field(n.Name)
		if f == nil {
			return nil, errf(n.Pos(), "no field %q in %s", n.Name, st)
		}
		return setT(e, f.Type), nil
	case *ast.CastExpr:
		if _, err := c.expr(n.X); err != nil {
			return nil, err
		}
		return setT(e, n.To), nil
	case *ast.SizeofExpr:
		if n.X != nil {
			if _, err := c.expr(n.X); err != nil {
				return nil, err
			}
		}
		return setT(e, ctype.IntType), nil
	}
	return nil, errf(e.Pos(), "unhandled expression %T", e)
}

func (c *checker) unary(n *ast.UnaryExpr) (*ctype.Type, error) {
	xt, err := c.expr(n.X)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case ast.Neg, ast.BitNot:
		if !xt.IsArith() {
			return nil, errf(n.Pos(), "unary %s on non-arithmetic %s", n.Op, xt)
		}
		if n.Op == ast.BitNot && !xt.IsInteger() {
			return nil, errf(n.Pos(), "~ on non-integer %s", xt)
		}
		return setT(n, promote(xt)), nil
	case ast.Not:
		if !xt.Decay().IsScalar() {
			return nil, errf(n.Pos(), "! on non-scalar %s", xt)
		}
		return setT(n, ctype.IntType), nil
	case ast.Deref:
		d := xt.Decay()
		if d.Kind != ctype.Pointer {
			return nil, errf(n.Pos(), "* applied to non-pointer %s", xt)
		}
		return setT(n, d.Elem), nil
	case ast.Addr:
		if !c.isLValue(n.X) {
			return nil, errf(n.Pos(), "& requires an lvalue")
		}
		c.markAddrTaken(n.X)
		return setT(n, ctype.PointerTo(xt)), nil
	case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
		if !c.isLValue(n.X) {
			return nil, errf(n.Pos(), "%s requires an lvalue", n.Op)
		}
		d := xt.Decay()
		if !d.IsArith() && d.Kind != ctype.Pointer {
			return nil, errf(n.Pos(), "%s on %s", n.Op, xt)
		}
		return setT(n, d), nil
	}
	return nil, errf(n.Pos(), "unhandled unary op %v", n.Op)
}

func promote(t *ctype.Type) *ctype.Type {
	switch t.Kind {
	case ctype.Char, ctype.Short, ctype.Enum:
		return ctype.IntType
	}
	return t
}

func (c *checker) binary(n *ast.BinaryExpr) (*ctype.Type, error) {
	lt, err := c.expr(n.L)
	if err != nil {
		return nil, err
	}
	rt, err := c.expr(n.R)
	if err != nil {
		return nil, err
	}
	ld, rd := lt.Decay(), rt.Decay()
	switch n.Op {
	case ast.LogAnd, ast.LogOr:
		if !ld.IsScalar() || !rd.IsScalar() {
			return nil, errf(n.Pos(), "%s on non-scalar operands (%s, %s)", n.Op, lt, rt)
		}
		return setT(n, ctype.IntType), nil
	case ast.Eq, ast.Ne, ast.Lt, ast.Gt, ast.Le, ast.Ge:
		if !ld.IsScalar() || !rd.IsScalar() {
			return nil, errf(n.Pos(), "%s on non-scalar operands (%s, %s)", n.Op, lt, rt)
		}
		return setT(n, ctype.IntType), nil
	case ast.Add:
		if ld.Kind == ctype.Pointer && rd.IsInteger() {
			return setT(n, ld), nil
		}
		if rd.Kind == ctype.Pointer && ld.IsInteger() {
			return setT(n, rd), nil
		}
		if ld.IsArith() && rd.IsArith() {
			return setT(n, ctype.Common(ld, rd)), nil
		}
		return nil, errf(n.Pos(), "invalid operands to + (%s, %s)", lt, rt)
	case ast.Sub:
		if ld.Kind == ctype.Pointer && rd.Kind == ctype.Pointer {
			return setT(n, ctype.IntType), nil // ptrdiff
		}
		if ld.Kind == ctype.Pointer && rd.IsInteger() {
			return setT(n, ld), nil
		}
		if ld.IsArith() && rd.IsArith() {
			return setT(n, ctype.Common(ld, rd)), nil
		}
		return nil, errf(n.Pos(), "invalid operands to - (%s, %s)", lt, rt)
	case ast.Mul, ast.Div:
		if !ld.IsArith() || !rd.IsArith() {
			return nil, errf(n.Pos(), "invalid operands to %s (%s, %s)", n.Op, lt, rt)
		}
		return setT(n, ctype.Common(ld, rd)), nil
	case ast.Rem, ast.And, ast.Or, ast.Xor, ast.Shl, ast.Shr:
		if !ld.IsInteger() || !rd.IsInteger() {
			return nil, errf(n.Pos(), "invalid operands to %s (%s, %s)", n.Op, lt, rt)
		}
		return setT(n, ctype.Common(ld, rd)), nil
	}
	return nil, errf(n.Pos(), "unhandled binary op %v", n.Op)
}

func (c *checker) assign(n *ast.AssignExpr) (*ctype.Type, error) {
	lt, err := c.expr(n.L)
	if err != nil {
		return nil, err
	}
	if !c.isLValue(n.L) {
		return nil, errf(n.Pos(), "assignment to non-lvalue")
	}
	if lt.Const {
		return nil, errf(n.Pos(), "assignment to const-qualified %s", lt)
	}
	if lt.Kind == ctype.Array {
		return nil, errf(n.Pos(), "assignment to array")
	}
	rt, err := c.expr(n.R)
	if err != nil {
		return nil, err
	}
	if n.Op != nil {
		// Compound assignment obeys the binary operator's constraints.
		fake := &ast.BinaryExpr{Op: *n.Op, L: n.L, R: n.R}
		if _, err := c.binary(fake); err != nil {
			return nil, err
		}
	} else if !ctype.Compatible(lt, rt.Decay()) {
		return nil, errf(n.Pos(), "cannot assign %s to %s", rt, lt)
	}
	return setT(n, lt), nil
}

func (c *checker) call(n *ast.CallExpr) (*ctype.Type, error) {
	// Calls to undeclared functions default to int(), K&R style.
	if id, ok := n.Fun.(*ast.IdentExpr); ok && c.lookup(id.Name) == nil {
		sym := &Symbol{Name: id.Name, Kind: SymFunc,
			Type: &ctype.Type{Kind: ctype.Func, Ret: ctype.IntType, OldStyle: true}}
		if c.par {
			// Never write the shared file scope from a worker; recording
			// the implicit declaration here also flags the whole unit for
			// serial re-checking (see CheckWorkers).
			c.overlay[id.Name] = sym
		} else {
			c.scopes[0][id.Name] = sym
		}
		c.info.Uses[id] = sym
		setT(id, sym.Type)
	}
	ft, err := c.expr(n.Fun)
	if err != nil {
		return nil, err
	}
	f := ft
	if f.Kind == ctype.Pointer {
		f = f.Elem
	}
	if f.Kind != ctype.Func {
		return nil, errf(n.Pos(), "called object is not a function (type %s)", ft)
	}
	if !f.OldStyle && !f.Variadic && len(n.Args) != len(f.Params) {
		return nil, errf(n.Pos(), "call has %d arguments, function takes %d", len(n.Args), len(f.Params))
	}
	for i, a := range n.Args {
		at, err := c.expr(a)
		if err != nil {
			return nil, err
		}
		if !f.OldStyle && i < len(f.Params) {
			if !ctype.Compatible(f.Params[i].Type, at.Decay()) {
				return nil, errf(a.Pos(), "argument %d: cannot pass %s as %s", i+1, at, f.Params[i].Type)
			}
		}
	}
	return setT(n, f.Ret), nil
}

// isLValue reports whether e designates an object.
func (c *checker) isLValue(e ast.Expr) bool {
	switch n := e.(type) {
	case *ast.IdentExpr:
		sym := c.info.Uses[n]
		return sym != nil && sym.Kind != SymFunc
	case *ast.UnaryExpr:
		return n.Op == ast.Deref
	case *ast.IndexExpr:
		return true
	case *ast.MemberExpr:
		return true
	}
	return false
}

// markAddrTaken records that &e roots at a named symbol. Subscripting a
// pointer (&p[1]) reads the pointer's value rather than exposing the
// pointer variable's own address, so only array bases propagate the mark.
func (c *checker) markAddrTaken(e ast.Expr) {
	switch n := e.(type) {
	case *ast.IdentExpr:
		if sym := c.info.Uses[n]; sym != nil {
			if c.par {
				// File-scope symbols are shared across workers; defer the
				// (idempotent) write to the post-join merge.
				c.took = append(c.took, sym)
			} else {
				sym.AddrTaken = true
			}
		}
	case *ast.IndexExpr:
		if n.X.Type() != nil && n.X.Type().Kind == ctype.Array {
			c.markAddrTaken(n.X)
		}
	case *ast.MemberExpr:
		if !n.Arrow {
			c.markAddrTaken(n.X)
		}
	}
}
