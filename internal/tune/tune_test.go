package tune_test

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/pass"
	"repro/internal/schedule"
	"repro/internal/titan"
	"repro/internal/tune"
)

// TestTuneDaxpyImproves is the autotune smoke check: on the paper's E2
// daxpy workload the tuner must find a legal non-default schedule that
// strictly beats the default plan, and compiling with the returned set
// must reproduce the measured win (same cycles, same output).
func TestTuneDaxpyImproves(t *testing.T) {
	w := bench.Daxpy(256)
	opts := driver.FullOptions()
	res, err := tune.Tune(w.Src, opts, tune.Config{})
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if res.Schedules.Len() == 0 {
		t.Fatal("tuner found no non-default schedule on daxpy")
	}
	if res.TunedCycles >= res.DefaultCycles {
		t.Fatalf("tuned plan does not beat default: tuned %d, default %d",
			res.TunedCycles, res.DefaultCycles)
	}
	if res.Measured == 0 {
		t.Fatal("tuner measured no candidates")
	}

	// Every adopted schedule must be internally valid.
	for _, d := range res.Decisions {
		if err := d.Schedule.Validate(); err != nil {
			t.Errorf("decision for %v selected an invalid schedule: %v", d.Loop, err)
		}
		if d.Cycles > d.DefaultCycles {
			t.Errorf("decision for %v regressed: %d cycles vs %d incumbent", d.Loop, d.Cycles, d.DefaultCycles)
		}
	}

	// Recompile under the winning set: the measured result must reproduce.
	ctx := pass.NewContext()
	ctx.Schedules = res.Schedules
	cres, err := driver.CompileWith(w.Src, opts, ctx)
	if err != nil {
		t.Fatalf("recompile with tuned set: %v", err)
	}
	r, err := titan.NewMachine(cres.Machine, 1).Run("main")
	if err != nil {
		t.Fatalf("run tuned program: %v", err)
	}
	if r.Cycles != res.TunedCycles {
		t.Errorf("tuned cycles not reproducible: ran %d, tuner reported %d", r.Cycles, res.TunedCycles)
	}
	if r.ExitCode != 0 {
		t.Errorf("tuned program exits %d", r.ExitCode)
	}
}

// The tuner is deterministic: two searches over the same unit agree on
// every decision (the schedule cache and BENCH_tune.json depend on it).
func TestTuneDeterministic(t *testing.T) {
	w := bench.CopyLoop(256)
	opts := driver.FullOptions()
	a, err := tune.Tune(w.Src, opts, tune.Config{})
	if err != nil {
		t.Fatalf("first Tune: %v", err)
	}
	b, err := tune.Tune(w.Src, opts, tune.Config{})
	if err != nil {
		t.Fatalf("second Tune: %v", err)
	}
	if !reflect.DeepEqual(a.Decisions, b.Decisions) {
		t.Errorf("decisions differ across identical searches:\n first %+v\nsecond %+v", a.Decisions, b.Decisions)
	}
	if a.TunedCycles != b.TunedCycles {
		t.Errorf("tuned cycles differ: %d vs %d", a.TunedCycles, b.TunedCycles)
	}
}

// Remarks renders exactly one sched-selected diagnostic per decision,
// positioned at the loop, with the measured delta in the args.
func TestTuneRemarks(t *testing.T) {
	w := bench.Daxpy(256)
	res, err := tune.Tune(w.Src, driver.FullOptions(), tune.Config{})
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	ds := res.Remarks()
	if len(ds) != len(res.Decisions) {
		t.Fatalf("%d remarks for %d decisions", len(ds), len(res.Decisions))
	}
	for i, d := range ds {
		if d.Code != diag.SchedSelected {
			t.Errorf("remark %d has code %s", i, d.Code)
		}
		dec := res.Decisions[i]
		if d.Proc != dec.Loop.Proc || d.Pos.Line != dec.Loop.Line {
			t.Errorf("remark %d positioned at %s:%v, decision at %+v", i, d.Proc, d.Pos, dec.Loop)
		}
		for _, key := range []string{"schedule", "cycles", "default_cycles", "delta"} {
			if _, ok := d.Args[key]; !ok {
				t.Errorf("remark %d missing arg %q", i, key)
			}
		}
	}
}

// TestTuneMaskStrategy: loops carrying a conditional get the mask
// alternatives (off, branchy-serial) as measured candidates. On the
// clip workload the default masked plan wins by a wide margin, so the
// tuner must keep it — no decision may adopt a strategy that loses to
// masked execution — and recompiling under the final set must leave the
// kernel masked and behavior-identical.
func TestTuneMaskStrategy(t *testing.T) {
	w := bench.Clip(256)
	opts := driver.FullOptions()
	res, err := tune.Tune(w.Src, opts, tune.Config{})
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if res.Measured == 0 {
		t.Fatal("tuner measured no candidates")
	}
	for _, d := range res.Decisions {
		if err := d.Schedule.Validate(); err != nil {
			t.Errorf("decision for %v selected an invalid schedule: %v", d.Loop, err)
		}
		if d.Schedule.MaskStrategy == schedule.MaskOff || d.Schedule.MaskStrategy == schedule.MaskBranchy {
			t.Errorf("tuner adopted %s for %v — masked execution should win on clip",
				d.Schedule.MaskStrategy, d.Loop)
		}
	}
	ctx := pass.NewContext()
	ctx.Schedules = res.Schedules
	cres, err := driver.CompileWith(w.Src, opts, ctx)
	if err != nil {
		t.Fatalf("recompile with tuned set: %v", err)
	}
	if cres.VectorStats.MaskedStmts < 1 {
		t.Errorf("tuned compile lost masked execution: %+v", cres.VectorStats)
	}
	r, err := titan.NewMachine(cres.Machine, 1).Run("main")
	if err != nil {
		t.Fatalf("run tuned program: %v", err)
	}
	scalar, err := driver.Run(w.Src, driver.Options{OptLevel: 1}, 1)
	if err != nil {
		t.Fatalf("scalar baseline: %v", err)
	}
	if r.ExitCode != scalar.ExitCode || r.Output != scalar.Output {
		t.Errorf("tuned program diverges from scalar: exit %d vs %d", r.ExitCode, scalar.ExitCode)
	}
}

// The candidate budget is respected.
func TestTuneBudget(t *testing.T) {
	w := bench.Daxpy(256)
	res, err := tune.Tune(w.Src, driver.FullOptions(), tune.Config{Budget: 3})
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if res.Measured > 3 {
		t.Errorf("measured %d candidates with budget 3", res.Measured)
	}
}
