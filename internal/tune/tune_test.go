package tune_test

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/pass"
	"repro/internal/titan"
	"repro/internal/tune"
)

// TestTuneDaxpyImproves is the autotune smoke check: on the paper's E2
// daxpy workload the tuner must find a legal non-default schedule that
// strictly beats the default plan, and compiling with the returned set
// must reproduce the measured win (same cycles, same output).
func TestTuneDaxpyImproves(t *testing.T) {
	w := bench.Daxpy(256)
	opts := driver.FullOptions()
	res, err := tune.Tune(w.Src, opts, tune.Config{})
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if res.Schedules.Len() == 0 {
		t.Fatal("tuner found no non-default schedule on daxpy")
	}
	if res.TunedCycles >= res.DefaultCycles {
		t.Fatalf("tuned plan does not beat default: tuned %d, default %d",
			res.TunedCycles, res.DefaultCycles)
	}
	if res.Measured == 0 {
		t.Fatal("tuner measured no candidates")
	}

	// Every adopted schedule must be internally valid.
	for _, d := range res.Decisions {
		if err := d.Schedule.Validate(); err != nil {
			t.Errorf("decision for %v selected an invalid schedule: %v", d.Loop, err)
		}
		if d.Cycles > d.DefaultCycles {
			t.Errorf("decision for %v regressed: %d cycles vs %d incumbent", d.Loop, d.Cycles, d.DefaultCycles)
		}
	}

	// Recompile under the winning set: the measured result must reproduce.
	ctx := pass.NewContext()
	ctx.Schedules = res.Schedules
	cres, err := driver.CompileWith(w.Src, opts, ctx)
	if err != nil {
		t.Fatalf("recompile with tuned set: %v", err)
	}
	r, err := titan.NewMachine(cres.Machine, 1).Run("main")
	if err != nil {
		t.Fatalf("run tuned program: %v", err)
	}
	if r.Cycles != res.TunedCycles {
		t.Errorf("tuned cycles not reproducible: ran %d, tuner reported %d", r.Cycles, res.TunedCycles)
	}
	if r.ExitCode != 0 {
		t.Errorf("tuned program exits %d", r.ExitCode)
	}
}

// The tuner is deterministic: two searches over the same unit agree on
// every decision (the schedule cache and BENCH_tune.json depend on it).
func TestTuneDeterministic(t *testing.T) {
	w := bench.CopyLoop(256)
	opts := driver.FullOptions()
	a, err := tune.Tune(w.Src, opts, tune.Config{})
	if err != nil {
		t.Fatalf("first Tune: %v", err)
	}
	b, err := tune.Tune(w.Src, opts, tune.Config{})
	if err != nil {
		t.Fatalf("second Tune: %v", err)
	}
	if !reflect.DeepEqual(a.Decisions, b.Decisions) {
		t.Errorf("decisions differ across identical searches:\n first %+v\nsecond %+v", a.Decisions, b.Decisions)
	}
	if a.TunedCycles != b.TunedCycles {
		t.Errorf("tuned cycles differ: %d vs %d", a.TunedCycles, b.TunedCycles)
	}
}

// Remarks renders exactly one sched-selected diagnostic per decision,
// positioned at the loop, with the measured delta in the args.
func TestTuneRemarks(t *testing.T) {
	w := bench.Daxpy(256)
	res, err := tune.Tune(w.Src, driver.FullOptions(), tune.Config{})
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	ds := res.Remarks()
	if len(ds) != len(res.Decisions) {
		t.Fatalf("%d remarks for %d decisions", len(ds), len(res.Decisions))
	}
	for i, d := range ds {
		if d.Code != diag.SchedSelected {
			t.Errorf("remark %d has code %s", i, d.Code)
		}
		dec := res.Decisions[i]
		if d.Proc != dec.Loop.Proc || d.Pos.Line != dec.Loop.Line {
			t.Errorf("remark %d positioned at %s:%v, decision at %+v", i, d.Proc, d.Pos, dec.Loop)
		}
		for _, key := range []string{"schedule", "cycles", "default_cycles", "delta"} {
			if _, ok := d.Args[key]; !ok {
				t.Errorf("remark %d missing arg %q", i, key)
			}
		}
	}
}

// The candidate budget is respected.
func TestTuneBudget(t *testing.T) {
	w := bench.Daxpy(256)
	res, err := tune.Tune(w.Src, driver.FullOptions(), tune.Config{Budget: 3})
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if res.Measured > 3 {
		t.Errorf("measured %d candidates with budget 3", res.Measured)
	}
}
