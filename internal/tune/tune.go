// Package tune is the measurement-driven schedule autotuner. The paper
// picks one loop strategy at compile time from static rules; the Titan
// simulator is deterministic and fast, so this package instead *measures*:
// it enumerates a bounded grid of legal candidate schedules per loop,
// compiles each candidate through the unmodified pipeline, runs the
// result on the fast Titan engine, and keeps the cycle-minimal plan.
//
// The search is greedy coordinate descent over loops: loops are visited
// in deterministic key order, each loop's candidates are measured against
// the best schedule set found so far, and a candidate is adopted only
// when it strictly beats the incumbent's total cycles AND reproduces the
// baseline's exit code and output (a misbehaving candidate is discarded,
// never diagnosed — the phases' own legality guards make this a belt-and-
// suspenders check, not the primary defense).
//
// Every examined loop yields one sched-selected remark naming the winning
// schedule and the measured cycle delta against the default plan, so
// -remarks surfaces the tuner's decisions exactly like the phase verdicts.
package tune

import (
	"fmt"
	"sort"

	"repro/internal/depend"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/il"
	"repro/internal/pass"
	"repro/internal/schedule"
	"repro/internal/titan"
	"repro/internal/token"
)

// Config bounds the search and fixes the measurement harness.
type Config struct {
	// Processors is the machine width candidates are measured on (1 when
	// zero) — measure on the width you will run on.
	Processors int
	// Entry is the simulated entry procedure (main when empty).
	Entry string
	// MaxLoops caps how many loops are tuned, hottest-independent order
	// not known statically so first-by-key order is used (8 when zero).
	MaxLoops int
	// Budget caps the number of measured candidate compiles beyond the
	// baseline (64 when zero).
	Budget int
}

func (c Config) processors() int {
	if c.Processors <= 0 {
		return 1
	}
	return c.Processors
}

func (c Config) entry() string {
	if c.Entry == "" {
		return "main"
	}
	return c.Entry
}

func (c Config) maxLoops() int {
	if c.MaxLoops <= 0 {
		return 8
	}
	return c.MaxLoops
}

func (c Config) budget() int {
	if c.Budget <= 0 {
		return 64
	}
	return c.Budget
}

// Decision records the tuner's verdict for one loop.
type Decision struct {
	Loop     schedule.LoopKey  `json:"loop"`
	Schedule schedule.Schedule `json:"schedule"`
	// DefaultCycles is the whole-program cycle count under the schedule
	// set before this loop was tuned; Cycles is the count with the
	// winning schedule adopted. Equal when the default won.
	DefaultCycles int64 `json:"default_cycles"`
	Cycles        int64 `json:"cycles"`
	// Candidates is how many alternatives were measured for this loop.
	Candidates int `json:"candidates"`
}

// Result is the tuner's output: the non-default schedules to compile
// with, plus the decision log the remarks and BENCH_tune.json are built
// from.
type Result struct {
	Schedules *schedule.Set `json:"schedules"`
	Decisions []Decision    `json:"decisions"`
	// DefaultCycles/TunedCycles bracket the whole search: cycles under
	// schedule.Default() everywhere vs. under the final set.
	DefaultCycles int64 `json:"default_cycles"`
	TunedCycles   int64 `json:"tuned_cycles"`
	// Measured counts candidate compiles beyond the baseline.
	Measured int `json:"measured"`
}

// Remarks renders one sched-selected diagnostic per decision. The slice
// is regenerated from the decision log, so a cached Result (titand's
// tuned-schedule cache) replays identical remarks without re-tuning.
func (r *Result) Remarks() []diag.Diagnostic {
	ds := make([]diag.Diagnostic, 0, len(r.Decisions))
	for _, d := range r.Decisions {
		delta := d.DefaultCycles - d.Cycles
		ds = append(ds, diag.Diagnostic{
			Severity: diag.SevRemark,
			Code:     diag.SchedSelected,
			Pos:      token.Pos{Line: d.Loop.Line, Col: d.Loop.Col},
			Proc:     d.Loop.Proc,
			Pass:     "tune",
			Message: fmt.Sprintf("schedule selected: %s (measured %d cycles, default %d, saved %d)",
				d.Schedule, d.Cycles, d.DefaultCycles, delta),
			Args: map[string]string{
				"schedule":       d.Schedule.String(),
				"cycles":         fmt.Sprint(d.Cycles),
				"default_cycles": fmt.Sprint(d.DefaultCycles),
				"delta":          fmt.Sprint(delta),
			},
		})
	}
	return ds
}

// loopInfo is one tunable loop discovered from the mid-pipeline snapshot.
type loopInfo struct {
	key        schedule.LoopKey
	candidates []schedule.Schedule
}

// Tune searches for the cycle-minimal schedule set for src compiled under
// opts. The source must simulate successfully under the default schedule;
// the returned set holds only the loops where a non-default plan won.
func Tune(src string, opts driver.Options, cfg Config) (*Result, error) {
	loops, err := discover(src, opts, cfg)
	if err != nil {
		return nil, err
	}
	baseline, err := measure(src, opts, nil, cfg)
	if err != nil {
		return nil, fmt.Errorf("tune: baseline run failed: %w", err)
	}
	res := &Result{Schedules: schedule.NewSet(), DefaultCycles: baseline.Cycles, TunedCycles: baseline.Cycles}
	best := baseline
	budget := cfg.budget()
	for _, li := range loops {
		dec := Decision{Loop: li.key, Schedule: schedule.Default(), DefaultCycles: best.Cycles, Cycles: best.Cycles}
		for _, cand := range li.candidates {
			if res.Measured >= budget {
				break
			}
			trial := cloneSet(res.Schedules)
			trial.Put(li.key, cand)
			got, err := measure(src, opts, trial, cfg)
			res.Measured++
			dec.Candidates++
			if err != nil || got.ExitCode != baseline.ExitCode || got.Output != baseline.Output {
				continue // candidate miscompiled or diverged: discard
			}
			if got.Cycles < dec.Cycles {
				dec.Cycles = got.Cycles
				dec.Schedule = cand
			}
		}
		if !dec.Schedule.IsDefault() {
			res.Schedules.Put(li.key, dec.Schedule)
			best.Cycles = dec.Cycles
		}
		res.Decisions = append(res.Decisions, dec)
	}
	res.TunedCycles = best.Cycles
	return res, nil
}

// measure compiles src under the schedule set and runs it on the fast
// Titan engine, returning the deterministic simulation result.
func measure(src string, opts driver.Options, set *schedule.Set, cfg Config) (titan.Result, error) {
	ctx := pass.NewContext()
	ctx.Diags = nil
	ctx.Schedules = set
	res, err := driver.CompileWith(src, opts, ctx)
	if err != nil {
		return titan.Result{}, err
	}
	// Candidate compiles are measure-and-discard; free their IL arenas so
	// a tuning search doesn't inflate the arena_bytes_live gauge.
	defer res.IL.Release()
	entry := cfg.entry()
	if _, ok := res.Machine.Funcs[entry]; !ok {
		return titan.Result{}, fmt.Errorf("tune: entry function %q is not defined", entry)
	}
	return titan.NewMachine(res.Machine, cfg.processors()).Run(entry)
}

// discover compiles src once with a snapshot hook and collects the
// tunable loops as they exist when the loop phases will see them (after
// scalar optimization, before vectorization), with a legality-checked
// candidate grid per loop.
func discover(src string, opts driver.Options, cfg Config) ([]loopInfo, error) {
	dopts := depend.Options{NoAlias: opts.NoAlias}
	infos := map[schedule.LoopKey]loopInfo{}
	snapName := pass.SnapshotInput
	if opts.OptLevel >= 1 {
		snapName = pass.PassScalar
	}
	ctx := pass.NewContext()
	ctx.Diags = nil
	ctx.Snapshot = func(name string, prog *il.Program) {
		if name != snapName {
			return
		}
		for _, p := range prog.Procs {
			collectLoops(p, p.Body, dopts, cfg, infos)
		}
	}
	dres, err := driver.CompileILWith(src, opts, ctx)
	if err != nil {
		return nil, err
	}
	// Only the snapshot's loop grid survives; drop the discovery IL.
	dres.IL.Release()
	keys := make([]schedule.LoopKey, 0, len(infos))
	for k := range infos {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	if len(keys) > cfg.maxLoops() {
		keys = keys[:cfg.maxLoops()]
	}
	out := make([]loopInfo, 0, len(keys))
	for _, k := range keys {
		out = append(out, infos[k])
	}
	return out, nil
}

// collectLoops walks the statement tree gathering every DO loop with a
// non-empty candidate grid.
func collectLoops(p *il.Proc, list []il.Stmt, dopts depend.Options, cfg Config, infos map[schedule.LoopKey]loopInfo) {
	il.WalkStmts(list, func(s il.Stmt) bool {
		loop, ok := s.(*il.DoLoop)
		if !ok {
			return true
		}
		cands := candidates(p, loop, dopts, cfg)
		if len(cands) > 0 {
			key := schedule.KeyFor(p.Name, loop.Pos)
			infos[key] = loopInfo{key: key, candidates: cands}
		}
		return true
	})
}

// candidates builds the bounded legal grid for one loop: strip-length
// variants and serial/width shapes for independent loops, unroll factors
// for countable straight-line loops, interchange for permutable perfect
// nests. Every candidate passes schedule.Check before it is offered.
func candidates(p *il.Proc, loop *il.DoLoop, dopts depend.Options, cfg Config) []schedule.Schedule {
	var out []schedule.Schedule
	try := func(s schedule.Schedule) {
		if s.IsDefault() {
			return
		}
		if schedule.Check(p, loop, s, nil, dopts) == nil {
			out = append(out, s)
		}
	}
	// Spreading-shape variants only matter when iterations are
	// independent; probe once with a width-capped plan.
	independent := schedule.Check(p, loop, schedule.Schedule{VL: schedule.DefaultVL, Unroll: 1,
		ParallelWidth: titan.MaxProcessors}, nil, dopts) == nil
	if independent {
		for _, vl := range []int{16, 64, 128} {
			try(schedule.Schedule{VL: vl, Unroll: 1})
		}
		try(schedule.Schedule{VL: schedule.DefaultVL, Unroll: 1, SerialStrips: true})
		if cfg.processors() > 1 {
			for w := 1; w < cfg.processors() && w < titan.MaxProcessors; w++ {
				try(schedule.Schedule{VL: schedule.DefaultVL, Unroll: 1, ParallelWidth: w})
			}
		}
	}
	// Dependent loops may still pipeline DOACROSS; when a sync plan
	// exists, search the post-coalescing stride (Check prunes strides the
	// dependence distance cannot cover at the scheduled width).
	if !independent {
		for _, ss := range []int{1, 2, 4, 8} {
			if ss > schedule.MaxSyncStride {
				continue
			}
			try(schedule.Schedule{VL: schedule.DefaultVL, Unroll: 1, SyncStride: ss})
			if cfg.processors() > 1 {
				for w := 2; w <= cfg.processors() && w <= titan.MaxProcessors; w *= 2 {
					try(schedule.Schedule{VL: schedule.DefaultVL, Unroll: 1, ParallelWidth: w, SyncStride: ss})
				}
			}
		}
	}
	for _, k := range []int{2, 4, 8} {
		if k <= schedule.MaxUnroll {
			try(schedule.Schedule{VL: schedule.DefaultVL, Unroll: k})
		}
	}
	// Conditional bodies add the mask axis. Masked execution is already
	// the default plan, so the alternatives worth measuring are keeping
	// the branch (off) and predicating without masking (branchy-serial);
	// either wins when the mask utilization is too low to pay for the
	// dense-timing masked strips.
	if loopHasCond(loop) {
		try(schedule.Schedule{VL: schedule.DefaultVL, Unroll: 1, MaskStrategy: schedule.MaskOff})
		try(schedule.Schedule{VL: schedule.DefaultVL, Unroll: 1, MaskStrategy: schedule.MaskBranchy})
	}
	try(schedule.Schedule{VL: schedule.DefaultVL, Unroll: 1, Interchange: true})
	return out
}

// loopHasCond reports whether the loop body contains a conditional (or an
// already-predicated statement) the mask strategy could act on. The tuner
// discovers loops before the ifconvert pass, so guarded stores still
// appear as If statements here.
func loopHasCond(loop *il.DoLoop) bool {
	found := false
	il.WalkStmts(loop.Body, func(s il.Stmt) bool {
		switch s.(type) {
		case *il.If, *il.PredAssign:
			found = true
			return false
		}
		return true
	})
	return found
}

// cloneSet copies a schedule set so a trial mutation cannot leak into the
// incumbent.
func cloneSet(s *schedule.Set) *schedule.Set {
	out := schedule.NewSet()
	for _, k := range s.Keys() {
		if v, ok := lookupKey(s, k); ok {
			out.Put(k, v)
		}
	}
	return out
}

func lookupKey(s *schedule.Set, k schedule.LoopKey) (schedule.Schedule, bool) {
	return s.Lookup(k.Proc, token.Pos{Line: k.Line, Col: k.Col})
}
