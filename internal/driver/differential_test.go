package driver

// Differential testing of the whole compiler: random structured C
// programs are generated alongside a Go reference interpretation, then
// compiled and simulated under every optimization configuration. Any
// divergence is a miscompilation somewhere in the
// lower/opt/vector/strength/codegen pipeline.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// progGen generates a random program and can evaluate it.
type progGen struct {
	r     *rand.Rand
	sb    strings.Builder
	depth int
}

// expr is the reference-evaluable expression tree.
type expr struct {
	op   string // "const", "var", binary ops, "neg", "not", "cond"
	val  int64
	vidx int
	l, r *expr
	c    *expr // condition for "cond"
}

const numVars = 4

func (g *progGen) genExpr(depth int) *expr {
	if depth <= 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 {
			return &expr{op: "const", val: int64(g.r.Intn(21) - 10)}
		}
		return &expr{op: "var", vidx: g.r.Intn(numVars)}
	}
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
		"==", "!=", "<", ">", "<=", ">=", "&&", "||", "neg", "not", "cond"}
	op := ops[g.r.Intn(len(ops))]
	switch op {
	case "neg", "not":
		return &expr{op: op, l: g.genExpr(depth - 1)}
	case "cond":
		return &expr{op: op, c: g.genExpr(depth - 1), l: g.genExpr(depth - 1), r: g.genExpr(depth - 1)}
	case "/", "%":
		// Non-zero constant divisors keep both worlds defined.
		d := int64(g.r.Intn(9) + 1)
		if g.r.Intn(2) == 0 {
			d = -d
		}
		return &expr{op: op, l: g.genExpr(depth - 1), r: &expr{op: "const", val: d}}
	case "<<", ">>":
		return &expr{op: op, l: g.genExpr(depth - 1), r: &expr{op: "const", val: int64(g.r.Intn(5))}}
	default:
		return &expr{op: op, l: g.genExpr(depth - 1), r: g.genExpr(depth - 1)}
	}
}

func (e *expr) c99(varNames []string) string {
	b2 := func(f string) string {
		return "(" + e.l.c99(varNames) + " " + f + " " + e.r.c99(varNames) + ")"
	}
	switch e.op {
	case "const":
		if e.val < 0 {
			return fmt.Sprintf("(%d)", e.val)
		}
		return fmt.Sprintf("%d", e.val)
	case "var":
		return varNames[e.vidx]
	case "neg":
		return "(-" + e.l.c99(varNames) + ")"
	case "not":
		return "(!" + e.l.c99(varNames) + ")"
	case "cond":
		return "(" + e.c.c99(varNames) + " ? " + e.l.c99(varNames) + " : " + e.r.c99(varNames) + ")"
	default:
		return b2(e.op)
	}
}

// eval interprets with the simulator's semantics: 64-bit registers,
// shift counts masked to 6 bits.
func (e *expr) eval(vars []int64) int64 {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch e.op {
	case "const":
		return e.val
	case "var":
		return vars[e.vidx]
	case "neg":
		return -e.l.eval(vars)
	case "not":
		return b2i(e.l.eval(vars) == 0)
	case "cond":
		if e.c.eval(vars) != 0 {
			return e.l.eval(vars)
		}
		return e.r.eval(vars)
	}
	l := e.l.eval(vars)
	r := e.r.eval(vars)
	switch e.op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return l * r
	case "/":
		return l / r
	case "%":
		return l % r
	case "&":
		return l & r
	case "|":
		return l | r
	case "^":
		return l ^ r
	case "<<":
		return l << uint(r&63)
	case ">>":
		return l >> uint(r&63)
	case "==":
		return b2i(l == r)
	case "!=":
		return b2i(l != r)
	case "<":
		return b2i(l < r)
	case ">":
		return b2i(l > r)
	case "<=":
		return b2i(l <= r)
	case ">=":
		return b2i(l >= r)
	case "&&":
		return b2i(l != 0 && r != 0)
	case "||":
		return b2i(l != 0 || r != 0)
	}
	panic("bad op " + e.op)
}

// stmt is the reference-evaluable statement tree.
type stmt struct {
	kind  string // "assign", "if", "for"
	vidx  int
	e     *expr
	body  []*stmt
	els   []*stmt
	trips int
	loopV int // extra loop counter index (negative: none)
}

func (g *progGen) genStmts(depth, n int) []*stmt {
	var out []*stmt
	for i := 0; i < n; i++ {
		switch k := g.r.Intn(6); {
		case k < 3 || depth <= 0:
			out = append(out, &stmt{kind: "assign", vidx: g.r.Intn(numVars), e: g.genExpr(3)})
		case k < 5:
			s := &stmt{kind: "if", e: g.genExpr(2),
				body: g.genStmts(depth-1, 1+g.r.Intn(2))}
			if g.r.Intn(2) == 0 {
				s.els = g.genStmts(depth-1, 1+g.r.Intn(2))
			}
			out = append(out, s)
		default:
			out = append(out, &stmt{kind: "for", trips: 1 + g.r.Intn(6),
				body: g.genStmts(depth-1, 1+g.r.Intn(2))})
		}
	}
	return out
}

func emitStmts(sb *strings.Builder, stmts []*stmt, varNames []string, indent string, loopSeq *int) {
	for _, s := range stmts {
		switch s.kind {
		case "assign":
			fmt.Fprintf(sb, "%s%s = %s;\n", indent, varNames[s.vidx], s.e.c99(varNames))
		case "if":
			fmt.Fprintf(sb, "%sif (%s) {\n", indent, s.e.c99(varNames))
			emitStmts(sb, s.body, varNames, indent+"\t", loopSeq)
			if s.els != nil {
				fmt.Fprintf(sb, "%s} else {\n", indent)
				emitStmts(sb, s.els, varNames, indent+"\t", loopSeq)
			}
			fmt.Fprintf(sb, "%s}\n", indent)
		case "for":
			*loopSeq++
			lv := fmt.Sprintf("L%d", *loopSeq)
			fmt.Fprintf(sb, "%s{ int %s; for (%s = 0; %s < %d; %s++) {\n",
				indent, lv, lv, lv, s.trips, lv)
			emitStmts(sb, s.body, varNames, indent+"\t", loopSeq)
			fmt.Fprintf(sb, "%s} }\n", indent)
		}
	}
}

func evalStmts(stmts []*stmt, vars []int64) {
	for _, s := range stmts {
		switch s.kind {
		case "assign":
			vars[s.vidx] = s.e.eval(vars)
		case "if":
			if s.e.eval(vars) != 0 {
				evalStmts(s.body, vars)
			} else if s.els != nil {
				evalStmts(s.els, vars)
			}
		case "for":
			for k := 0; k < s.trips; k++ {
				evalStmts(s.body, vars)
			}
		}
	}
}

// buildProgram renders the statement list as a C program returning a hash
// of the final variable values, and computes the expected exit code.
func buildProgram(stmts []*stmt, inputs []int64) (string, int64) {
	varNames := []string{"va", "vb", "vc", "vd"}
	var sb strings.Builder
	sb.WriteString("int run(int va, int vb, int vc, int vd) {\n")
	loopSeq := 0
	emitStmts(&sb, stmts, varNames, "\t", &loopSeq)
	// Mix the results; keep within int32 via masking so the 4-byte
	// return path cannot truncate differently.
	sb.WriteString("\treturn ((va ^ vb) + (vc ^ vd)) & 0xffff;\n}\n")
	fmt.Fprintf(&sb, "int main(void) { return run(%d, %d, %d, %d); }\n",
		inputs[0], inputs[1], inputs[2], inputs[3])

	vars := append([]int64(nil), inputs...)
	evalStmts(stmts, vars)
	want := ((vars[0] ^ vars[1]) + (vars[2] ^ vars[3])) & 0xffff
	return sb.String(), want
}

func TestDifferentialRandomPrograms(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"O0", Options{OptLevel: 0}},
		{"O1", ScalarOptions()},
		{"full", FullOptions()},
		{"simple-ivsub", Options{OptLevel: 1, Inline: true, Vectorize: true, SimpleIVSub: true, StrengthReduce: true}},
	}
	n := 120
	if testing.Short() {
		n = 25
	}
	for seed := 0; seed < n; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		g := &progGen{r: r}
		stmts := g.genStmts(2, 2+r.Intn(4))
		inputs := []int64{int64(r.Intn(41) - 20), int64(r.Intn(41) - 20),
			int64(r.Intn(41) - 20), int64(r.Intn(41) - 20)}
		src, want := buildProgram(stmts, inputs)
		for _, cfg := range configs {
			res, err := Run(src, cfg.opts, 1+seed%4)
			if err != nil {
				t.Fatalf("seed %d cfg %s: %v\nprogram:\n%s", seed, cfg.name, err, src)
			}
			if res.ExitCode != want {
				t.Fatalf("seed %d cfg %s: got %d want %d\nprogram:\n%s",
					seed, cfg.name, res.ExitCode, want, src)
			}
		}
	}
}

// TestDifferentialExpressions stresses deeply nested side-effect-free
// expressions through all the folding paths.
func TestDifferentialExpressions(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 50
	}
	for seed := 0; seed < n; seed++ {
		r := rand.New(rand.NewSource(int64(1000 + seed)))
		g := &progGen{r: r}
		e := g.genExpr(5)
		varNames := []string{"va", "vb", "vc", "vd"}
		inputs := []int64{int64(r.Intn(19) - 9), int64(r.Intn(19) - 9),
			int64(r.Intn(19) - 9), int64(r.Intn(19) - 9)}
		src := fmt.Sprintf(`
int run(int va, int vb, int vc, int vd) { return (%s) & 0xffff; }
int main(void) { return run(%d, %d, %d, %d); }
`, e.c99(varNames), inputs[0], inputs[1], inputs[2], inputs[3])
		want := e.eval(inputs) & 0xffff
		for _, lvl := range []Options{{OptLevel: 0}, ScalarOptions()} {
			res, err := Run(src, lvl, 1)
			if err != nil {
				t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
			}
			if res.ExitCode != want {
				t.Fatalf("seed %d opts %+v: got %d want %d\nprogram:\n%s",
					seed, lvl, res.ExitCode, want, src)
			}
		}
	}
}

// TestDifferentialArrayLoops exercises the loop pipeline with random
// affine array updates, checking final array contents element by element.
func TestDifferentialArrayLoops(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	for seed := 0; seed < n; seed++ {
		r := rand.New(rand.NewSource(int64(5000 + seed)))
		size := 64
		stride := 1 + r.Intn(3)
		offset := r.Intn(4)
		scale := 1 + r.Intn(5)
		add := r.Intn(9) - 4
		limit := (size - offset) / stride
		if limit > size {
			limit = size
		}
		src := fmt.Sprintf(`
int a[%d];
int main(void) {
	int i, acc;
	for (i = 0; i < %d; i++)
		a[%d*i+%d] = %d*i + %d;
	acc = 0;
	for (i = 0; i < %d; i++)
		acc = acc + a[i];
	return acc & 0xffff;
}
`, size, limit, stride, offset, scale, add, size)
		// Reference.
		ref := make([]int64, size)
		for i := 0; i < limit; i++ {
			ref[stride*i+offset] = int64(scale*i + add)
		}
		var want int64
		for _, v := range ref {
			want += v
		}
		want &= 0xffff
		for _, cfg := range []Options{{OptLevel: 0}, ScalarOptions(), FullOptions()} {
			res, err := Run(src, cfg, 1+seed%4)
			if err != nil {
				t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
			}
			if res.ExitCode != want {
				t.Fatalf("seed %d cfg %+v: got %d want %d\nprogram:\n%s",
					seed, cfg, res.ExitCode, want, src)
			}
		}
	}
}
