package driver

import (
	"fmt"
	"math/rand"
	"testing"
)

// Floating-point end-to-end coverage: doubles through the vector pipeline,
// f32 rounding semantics, mixed int/float arithmetic, and a float
// differential test against a Go reference.

func TestDoubleVectorizes(t *testing.T) {
	src := `
double a[512], b[512];
int main(void) {
	int i;
	for (i = 0; i < 512; i++) b[i] = i;
	for (i = 0; i < 512; i++) a[i] = b[i] * 0.5;
	return 0;
}
`
	res, err := Compile(src, FullOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.VectorStats.VectorStmts < 1 {
		t.Fatalf("double loop did not vectorize: %+v", res.VectorStats)
	}
	// Correctness across processor counts.
	check := `
double a[512], b[512];
int main(void) {
	int i, bad;
	for (i = 0; i < 512; i++) b[i] = i;
	for (i = 0; i < 512; i++) a[i] = b[i] * 0.5;
	bad = 0;
	for (i = 0; i < 512; i++)
		if (a[i] != i * 0.5) bad = bad + 1;
	return bad;
}
`
	for procs := 1; procs <= 4; procs++ {
		r, err := Run(check, FullOptions(), procs)
		if err != nil {
			t.Fatal(err)
		}
		if r.ExitCode != 0 {
			t.Errorf("procs=%d: %d mismatches", procs, r.ExitCode)
		}
	}
}

func TestIntArrayVectorizes(t *testing.T) {
	src := `
int a[256], b[256];
int main(void) {
	int i, bad;
	for (i = 0; i < 256; i++) b[i] = i * 3;
	for (i = 0; i < 256; i++) a[i] = b[i] * 2;
	bad = 0;
	for (i = 0; i < 256; i++)
		if (a[i] != i * 6) bad = bad + 1;
	return bad;
}
`
	for procs := 1; procs <= 2; procs++ {
		r, err := Run(src, FullOptions(), procs)
		if err != nil {
			t.Fatal(err)
		}
		if r.ExitCode != 0 {
			t.Errorf("procs=%d: %d mismatches", procs, r.ExitCode)
		}
	}
}

func TestFloat32RoundingThroughMemory(t *testing.T) {
	// Values stored to float arrays round to f32; register-resident
	// doubles do not. The simulator must model both.
	src := `
float f[1];
double d[1];
int main(void) {
	f[0] = 16777217.0;  /* 2^24+1: not representable in f32 */
	d[0] = 16777217.0;
	if (f[0] == 16777216.0f && d[0] == 16777217.0)
		return 1;
	return 0;
}
`
	r, err := Run(src, ScalarOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 1 {
		t.Errorf("rounding semantics wrong: exit %d", r.ExitCode)
	}
}

func TestFloatDivision(t *testing.T) {
	src := `
int main(void) {
	float a, b;
	a = 1.0f;
	b = 3.0f;
	if (a / b > 0.333f && a / b < 0.334f) return 1;
	return 0;
}
`
	if r, _ := Run(src, ScalarOptions(), 1); r.ExitCode != 1 {
		t.Error("float division broken")
	}
}

// TestDifferentialFloat compares float expression evaluation against Go
// (the simulator computes scalar FP in float64, like the Titan's
// registers).
func TestDifferentialFloat(t *testing.T) {
	n := 80
	if testing.Short() {
		n = 20
	}
	ops := []string{"+", "-", "*"}
	for seed := 0; seed < n; seed++ {
		r := rand.New(rand.NewSource(int64(9000 + seed)))
		// Build a random arithmetic expression string and a parallel Go
		// evaluation.
		var build func(depth int) (string, float64)
		vals := []float64{1.5, -2.25, 0.5, 3.0}
		names := []string{"w", "x", "y", "z"}
		build = func(depth int) (string, float64) {
			if depth <= 0 || r.Intn(3) == 0 {
				if r.Intn(2) == 0 {
					i := r.Intn(4)
					return names[i], vals[i]
				}
				c := float64(r.Intn(17)-8) / 2
				return fmt.Sprintf("(%g)", c), c
			}
			op := ops[r.Intn(len(ops))]
			ls, lv := build(depth - 1)
			rs, rv := build(depth - 1)
			var v float64
			switch op {
			case "+":
				v = lv + rv
			case "-":
				v = lv - rv
			case "*":
				v = lv * rv
			}
			return "(" + ls + " " + op + " " + rs + ")", v
		}
		es, want := build(4)
		// Compare against a small integer hash of the result scaled: exact
		// equality on doubles is fine since both sides do identical f64
		// arithmetic.
		src := fmt.Sprintf(`
double w, x, y, z;
int main(void) {
	double r;
	w = 1.5; x = -2.25; y = 0.5; z = 3.0;
	r = %s;
	if (r == %v) return 1;
	return 0;
}
`, es, fmtGo(want))
		res, err := Run(src, ScalarOptions(), 1)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if res.ExitCode != 1 {
			t.Fatalf("seed %d: mismatch\n%s", seed, src)
		}
	}
}

// fmtGo renders a float64 as a C literal with full precision.
func fmtGo(v float64) string {
	return fmt.Sprintf("%.17g", v)
}

func TestPrintfFloats(t *testing.T) {
	src := `
int printf(char *fmt, ...);
int main(void) {
	printf("%g %g %d\n", 1.5f, 2.5, 3);
	return 0;
}
`
	r, err := Run(src, ScalarOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Output != "1.5 2.5 3\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestPutcharPuts(t *testing.T) {
	src := `
int putchar(int c);
int puts(char *s);
int main(void) {
	putchar('h');
	putchar('i');
	putchar(10);
	puts("there");
	return 0;
}
`
	r, err := Run(src, ScalarOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Output != "hi\nthere\n" {
		t.Errorf("output %q", r.Output)
	}
}

func TestNegativeStrideVector(t *testing.T) {
	// A reversed copy c[i] = b[n-1-i] reads with negative stride.
	src := `
float b[128], c[128];
int main(void) {
	int i, bad;
	for (i = 0; i < 128; i++) b[i] = i;
	for (i = 0; i < 128; i++) c[i] = b[127 - i] * 1.0f;
	bad = 0;
	for (i = 0; i < 128; i++)
		if (c[i] != 127 - i) bad = bad + 1;
	return bad;
}
`
	for _, opts := range []Options{ScalarOptions(), FullOptions()} {
		r, err := Run(src, opts, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.ExitCode != 0 {
			t.Errorf("opts %+v: %d mismatches", opts, r.ExitCode)
		}
	}
}

func TestMatrixNestOuterParallelInnerVector(t *testing.T) {
	// The Titan's natural pattern: outer loop across processors, inner
	// loop in vector (§2). Verify the transformation fires and the result
	// stays exact at every processor count.
	src := `
float a[64][64], b[64][64];
int main(void) {
	int i, j, bad;
	for (i = 0; i < 64; i++)
		for (j = 0; j < 64; j++)
			b[i][j] = i * 64 + j;
	for (i = 0; i < 64; i++)
		for (j = 0; j < 64; j++)
			a[i][j] = b[i][j] * 2.0f + 1.0f;
	bad = 0;
	for (i = 0; i < 64; i++)
		for (j = 0; j < 64; j++)
			if (a[i][j] != (i * 64 + j) * 2.0f + 1.0f) bad = bad + 1;
	return bad;
}
`
	res, err := Compile(src, FullOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NestStats.NestsParallelized < 1 {
		t.Fatalf("no nest parallelized: %+v", res.NestStats)
	}
	if res.VectorStats.VectorStmts < 1 {
		t.Fatalf("inner loops not vectorized: %+v", res.VectorStats)
	}
	for procs := 1; procs <= 4; procs++ {
		r, err := Run(src, FullOptions(), procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if r.ExitCode != 0 {
			t.Errorf("procs=%d: %d mismatches", procs, r.ExitCode)
		}
	}
	// And it should scale.
	r1, _ := Run(src, FullOptions(), 1)
	r4, _ := Run(src, FullOptions(), 4)
	if r4.Cycles >= r1.Cycles {
		t.Errorf("no scaling: p1=%d p4=%d", r1.Cycles, r4.Cycles)
	}
	t.Logf("matrix nest: p1=%d p4=%d cycles (%.2fx)", r1.Cycles, r4.Cycles,
		float64(r1.Cycles)/float64(r4.Cycles))
}
