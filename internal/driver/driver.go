// Package driver orchestrates the Titan C compilation pipeline in the
// paper's phase order (§2, §5.2):
//
//	parse → type check → lower to IL → inline expansion (optionally from
//	catalogs) → scalar optimization (use-def chains, while→DO conversion,
//	constant propagation with unreachable-code elimination, induction
//	variable substitution, copy propagation, dead code elimination) →
//	dependence analysis → vectorization → parallelization → dependence-
//	driven strength reduction on the serial residue → code generation →
//	Titan simulation.
//
// The mid-end phases live in package pass: driver builds a pass.Manager
// from the Options and delegates, so the pipeline order is written down
// exactly once (pass.BuildPipeline) and every compile gets the manager's
// per-pass instrumentation, IL verification, and per-procedure worker
// pool for free.
package driver

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/codegen"
	"repro/internal/il"
	"repro/internal/inline"
	"repro/internal/lower"
	"repro/internal/parallel"
	"repro/internal/parser"
	"repro/internal/pass"
	"repro/internal/sema"
	"repro/internal/strength"
	"repro/internal/titan"
	"repro/internal/vector"
)

// Options selects compiler behavior; the zero value is plain scalar
// compilation with scalar optimization. It is the pass package's option
// type: the pass manager builds the pipeline directly from it.
type Options = pass.Options

// ScalarOptions is the -O1 scalar configuration.
func ScalarOptions() Options {
	return Options{OptLevel: 1, StrengthReduce: true}
}

// FullOptions is the full §9 configuration: inlining, vectorization,
// parallelization, and strength reduction.
func FullOptions() Options {
	return Options{OptLevel: 1, Inline: true, Vectorize: true, Parallelize: true, StrengthReduce: true}
}

// Result carries the compiled artifacts of one translation unit.
type Result struct {
	AST     *ast.File
	IL      *il.Program
	Machine *titan.Program
	// Report is the pipeline's unified per-pass instrumentation: wall
	// time and statement deltas per pass plus every phase's stats.
	Report *pass.Report
	// Per-phase stats, mirrored from Report for convenience.
	VectorStats   vector.Stats
	ParallelStats parallel.Stats
	ListStats     parallel.ListStats
	NestStats     parallel.NestStats
	StrengthStats strength.Stats
	InlinedCalls  int
}

// frontEnd runs parse → type check → lower and fills res.AST and res.IL.
// workers bounds the per-function parallelism of all three phases (1 runs
// the classic serial front end, the differential baseline).
func frontEnd(src string, res *Result, workers int) error {
	f, err := parser.ParseWorkers(src, workers)
	if err != nil {
		return err
	}
	res.AST = f
	info, err := sema.CheckWorkers(f, workers)
	if err != nil {
		return err
	}
	prog, err := lower.FileWorkers(f, info, workers)
	if err != nil {
		return err
	}
	res.IL = prog
	return nil
}

// frontEndWorkers resolves the front end's worker count from a pass
// context, mirroring pass.Context's convention (nil or 0 → GOMAXPROCS).
func frontEndWorkers(ctx *pass.Context) int {
	if ctx != nil && ctx.Workers > 0 {
		return ctx.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Compile runs the full pipeline over one source buffer.
func Compile(src string, opts Options) (*Result, error) {
	return CompileWith(src, opts, nil)
}

// CompileWith is Compile with an explicit pass context, letting tools
// install snapshot hooks, adjust the worker pool, or read the report from
// a context they own. A nil ctx gets pass.NewContext defaults.
func CompileWith(src string, opts Options, ctx *pass.Context) (*Result, error) {
	res, err := CompileILWith(src, opts, ctx)
	if err != nil {
		return nil, err
	}
	tp, err := codegen.Generate(res.IL)
	if err != nil {
		return nil, err
	}
	if (opts.StrengthReduce || opts.Vectorize) && !opts.NoSchedule {
		codegen.Schedule(tp)
	}
	res.Machine = tp
	return res, nil
}

// CompileIL runs the front half only (through loop optimization), for
// tools that inspect IL.
func CompileIL(src string, opts Options) (*Result, error) {
	return CompileILWith(src, opts, nil)
}

// CompileILWith is CompileIL with an explicit pass context.
func CompileILWith(src string, opts Options, ctx *pass.Context) (*Result, error) {
	res := &Result{}
	if err := frontEnd(src, res, frontEndWorkers(ctx)); err != nil {
		// Record the positioned form on the caller's context so tools
		// that own the context see front-end failures in the same
		// structured stream as the optimization remarks.
		if ctx != nil {
			if d, ok := ErrorDiagnostic(err); ok {
				ctx.Diags.Report(d)
			}
		}
		return nil, err
	}
	if err := OptimizeILWith(res, opts, ctx); err != nil {
		return nil, err
	}
	return res, nil
}

// OptimizeIL applies the mid-end phases to res.IL in place.
func OptimizeIL(res *Result, opts Options) error {
	return OptimizeILWith(res, opts, nil)
}

// OptimizeILWith runs the pass manager's pipeline over res.IL and records
// the report (and its stat mirrors) on res.
func OptimizeILWith(res *Result, opts Options, ctx *pass.Context) error {
	rep, err := pass.NewManager(opts).Run(res.IL, ctx)
	res.Report = rep
	res.VectorStats = rep.Vector
	res.ParallelStats = rep.Parallel
	res.ListStats = rep.List
	res.NestStats = rep.Nest
	res.StrengthStats = rep.Strength
	res.InlinedCalls = rep.Inline.CallsExpanded
	return err
}

// Run compiles and simulates in one step, starting at main.
func Run(src string, opts Options, processors int) (titan.Result, error) {
	return RunEntry(src, "", opts, processors)
}

// RunEntry compiles and simulates starting at the named entry procedure
// (main when entry is empty). A missing entry is reported as a compile
// error naming the functions the program does define.
func RunEntry(src, entry string, opts Options, processors int) (titan.Result, error) {
	if entry == "" {
		entry = "main"
	}
	res, err := Compile(src, opts)
	if err != nil {
		return titan.Result{}, err
	}
	if _, ok := res.Machine.Funcs[entry]; !ok {
		return titan.Result{}, fmt.Errorf("driver: entry function %q is not defined (program defines: %s)",
			entry, strings.Join(sortedFuncNames(res.Machine), ", "))
	}
	m := titan.NewMachine(res.Machine, processors)
	return m.Run(entry)
}

// WriteCatalogFromSource compiles a library source and writes its catalog.
func WriteCatalogFromSource(w io.Writer, src string) error {
	res := &Result{}
	if err := frontEnd(src, res, frontEndWorkers(nil)); err != nil {
		return err
	}
	return inline.WriteCatalog(w, inline.BuildCatalog(res.IL))
}

// DumpIL renders the IL of every procedure (the ildump tool's engine).
func DumpIL(res *Result) string {
	if res.IL == nil {
		return ""
	}
	return res.IL.String()
}

// Disassemble renders the generated Titan code.
func Disassemble(res *Result) string {
	if res.Machine == nil {
		return ""
	}
	var sb strings.Builder
	for _, name := range sortedFuncNames(res.Machine) {
		sb.WriteString(res.Machine.Funcs[name].Disassemble())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func sortedFuncNames(tp *titan.Program) []string {
	names := make([]string, 0, len(tp.Funcs))
	for n := range tp.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FormatResult renders a simulation result like the titanrun tool does.
func FormatResult(r titan.Result, processors int) string {
	return fmt.Sprintf("exit=%d cycles=%d instrs=%d flops=%d mflops=%.2f procs=%d",
		r.ExitCode, r.Cycles, r.Instrs, r.FlopCount, r.MFLOPS(), processors)
}
