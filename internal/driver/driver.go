// Package driver orchestrates the Titan C compilation pipeline in the
// paper's phase order (§2, §5.2):
//
//	parse → type check → lower to IL → inline expansion (optionally from
//	catalogs) → scalar optimization (use-def chains, while→DO conversion,
//	constant propagation with unreachable-code elimination, induction
//	variable substitution, copy propagation, dead code elimination) →
//	dependence analysis → vectorization → parallelization → dependence-
//	driven strength reduction on the serial residue → code generation →
//	Titan simulation.
package driver

import (
	"fmt"
	"io"

	"repro/internal/ast"
	"repro/internal/codegen"
	"repro/internal/depend"
	"repro/internal/il"
	"repro/internal/inline"
	"repro/internal/lower"
	"repro/internal/opt"
	"repro/internal/parallel"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/strength"
	"repro/internal/titan"
	"repro/internal/vector"
)

// Options selects compiler behavior; the zero value is plain scalar
// compilation with scalar optimization.
type Options struct {
	// OptLevel 0 disables all optimization; 1 enables the scalar pipeline
	// (default for the named constructors below).
	OptLevel int
	// Inline enables inline expansion.
	Inline bool
	// InlineConfig overrides the default expansion policy.
	InlineConfig *inline.Config
	// Catalogs provides library procedure databases for inlining (§7).
	Catalogs []*inline.Catalog
	// Vectorize enables the vectorizer.
	Vectorize bool
	// Parallelize enables do-parallel generation (implies nothing about
	// processor count; that is a machine property).
	Parallelize bool
	// ListParallel enables the §10 extension: linked-list while loops are
	// spread across processors by serializing the pointer chase. Turning
	// it on asserts the paper's "each motion down a pointer goes to
	// independent storage" assumption for the whole unit.
	ListParallel bool
	// VL overrides the strip length (vector.DefaultVL when 0).
	VL int
	// NoAlias asserts pointer parameters follow Fortran aliasing rules
	// (§9's compiler option).
	NoAlias bool
	// StrengthReduce runs §6's dependence-driven scalar loop optimization.
	StrengthReduce bool
	// SimpleIVSub selects the A2 ablation inside the scalar optimizer.
	SimpleIVSub bool
	// NoCopyProp disables copy/forward propagation (combined with
	// SimpleIVSub this models the full "straightforward" pipeline of
	// §5.3).
	NoCopyProp bool
	// DisableIVSub turns induction-variable substitution off entirely.
	DisableIVSub bool
	// ForceIVSub runs induction-variable substitution even when neither
	// vectorization nor strength reduction is enabled (ildump's phase
	// view; normally ivsub only pays off when a later phase consumes it —
	// §6).
	ForceIVSub bool
	// NoStrengthPromotion / NoStrengthReduction toggle §6 sub-passes.
	NoStrengthPromotion bool
	NoStrengthReduction bool
	// NoSchedule disables the §6 dependence-informed instruction
	// scheduler (ablation A5). Scheduling otherwise runs whenever the
	// dependence-driven phases do ("Information from the dependence graph
	// is passed back to the code generation to allow better overlap").
	NoSchedule bool
}

// ScalarOptions is the -O1 scalar configuration.
func ScalarOptions() Options {
	return Options{OptLevel: 1, StrengthReduce: true}
}

// FullOptions is the full §9 configuration: inlining, vectorization,
// parallelization, and strength reduction.
func FullOptions() Options {
	return Options{OptLevel: 1, Inline: true, Vectorize: true, Parallelize: true, StrengthReduce: true}
}

// Result carries the compiled artifacts of one translation unit.
type Result struct {
	AST     *ast.File
	IL      *il.Program
	Machine *titan.Program
	// Stats from the loop phases.
	VectorStats   vector.Stats
	ParallelStats parallel.Stats
	ListStats     parallel.ListStats
	NestStats     parallel.NestStats
	StrengthStats strength.Stats
	InlinedCalls  int
}

// Compile runs the full pipeline over one source buffer.
func Compile(src string, opts Options) (*Result, error) {
	res := &Result{}
	f, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	res.AST = f
	info, err := sema.Check(f)
	if err != nil {
		return nil, err
	}
	prog, err := lower.File(f, info)
	if err != nil {
		return nil, err
	}
	res.IL = prog

	if err := OptimizeIL(res, opts); err != nil {
		return nil, err
	}

	tp, err := codegen.Generate(prog)
	if err != nil {
		return nil, err
	}
	if (opts.StrengthReduce || opts.Vectorize) && !opts.NoSchedule {
		codegen.Schedule(tp)
	}
	res.Machine = tp
	return res, nil
}

// CompileIL runs the front half only (through loop optimization), for
// tools that inspect IL.
func CompileIL(src string, opts Options) (*Result, error) {
	res := &Result{}
	f, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	res.AST = f
	info, err := sema.Check(f)
	if err != nil {
		return nil, err
	}
	prog, err := lower.File(f, info)
	if err != nil {
		return nil, err
	}
	res.IL = prog
	if err := OptimizeIL(res, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// OptimizeIL applies the mid-end phases to res.IL in place.
func OptimizeIL(res *Result, opts Options) error {
	prog := res.IL
	if opts.Inline {
		cfg := inline.DefaultConfig()
		if opts.InlineConfig != nil {
			cfg = *opts.InlineConfig
		}
		in := inline.New(prog, cfg)
		for _, c := range opts.Catalogs {
			in.AddCatalog(c)
		}
		res.InlinedCalls = in.ExpandProgram()
	}
	if opts.OptLevel >= 1 {
		oo := opt.Options{
			IVSub:       !opts.DisableIVSub && (opts.Vectorize || opts.StrengthReduce || opts.ForceIVSub),
			SimpleIVSub: opts.SimpleIVSub,
			NoCopyProp:  opts.NoCopyProp,
		}
		opt.OptimizeProgram(prog, oo)
	}
	dopts := depend.Options{NoAlias: opts.NoAlias}
	if opts.Parallelize {
		// Loop nests parallelize at the outer level before the vectorizer
		// rewrites the inner loops (§2's outer-parallel/inner-vector
		// pattern).
		for _, p := range prog.Procs {
			st := parallel.ParallelizeNests(p)
			res.NestStats.NestsParallelized += st.NestsParallelized
		}
	}
	if opts.Vectorize {
		for _, p := range prog.Procs {
			st := vector.VectorizeProc(p, vector.Config{
				VL:       opts.VL,
				Parallel: opts.Parallelize,
				Depend:   dopts,
			})
			res.VectorStats.LoopsExamined += st.LoopsExamined
			res.VectorStats.LoopsVectorized += st.LoopsVectorized
			res.VectorStats.VectorStmts += st.VectorStmts
			res.VectorStats.ParallelLoops += st.ParallelLoops
			res.VectorStats.SerialResidue += st.SerialResidue
		}
	}
	if opts.Parallelize {
		for _, p := range prog.Procs {
			st := parallel.ParallelizeProc(p, dopts)
			res.ParallelStats.LoopsExamined += st.LoopsExamined
			res.ParallelStats.LoopsParallelized += st.LoopsParallelized
		}
	}
	if opts.ListParallel {
		for _, p := range prog.Procs {
			st := parallel.ParallelizeListLoops(prog, p)
			res.ListStats.LoopsConverted += st.LoopsConverted
		}
	}
	if opts.StrengthReduce && opts.OptLevel >= 1 {
		for _, p := range prog.Procs {
			st := strength.OptimizeLoops(p, strength.Config{
				Depend:      dopts,
				NoPromotion: opts.NoStrengthPromotion,
				NoReduction: opts.NoStrengthReduction,
			})
			res.StrengthStats.PromotedLoads += st.PromotedLoads
			res.StrengthStats.ReducedRefs += st.ReducedRefs
			res.StrengthStats.Pointers += st.Pointers
			res.StrengthStats.HoistedExprs += st.HoistedExprs
			res.StrengthStats.LoopsTransformed += st.LoopsTransformed
		}
		// Strength reduction introduces preheader temporaries; one more
		// scalar cleanup round tidies them.
		if opts.OptLevel >= 1 {
			opt.OptimizeProgram(prog, opt.Options{IVSub: false})
		}
	}
	return nil
}

// Run compiles and simulates in one step.
func Run(src string, opts Options, processors int) (titan.Result, error) {
	res, err := Compile(src, opts)
	if err != nil {
		return titan.Result{}, err
	}
	m := titan.NewMachine(res.Machine, processors)
	return m.Run("main")
}

// WriteCatalogFromSource compiles a library source and writes its catalog.
func WriteCatalogFromSource(w io.Writer, src string) error {
	f, err := parser.Parse(src)
	if err != nil {
		return err
	}
	info, err := sema.Check(f)
	if err != nil {
		return err
	}
	prog, err := lower.File(f, info)
	if err != nil {
		return err
	}
	return inline.WriteCatalog(w, inline.BuildCatalog(prog))
}

// DumpIL renders the IL of every procedure (the ildump tool's engine).
func DumpIL(res *Result) string {
	if res.IL == nil {
		return ""
	}
	return res.IL.String()
}

// Disassemble renders the generated Titan code.
func Disassemble(res *Result) string {
	if res.Machine == nil {
		return ""
	}
	out := ""
	for _, name := range sortedFuncNames(res.Machine) {
		out += res.Machine.Funcs[name].Disassemble() + "\n"
	}
	return out
}

func sortedFuncNames(tp *titan.Program) []string {
	var names []string
	for n := range tp.Funcs {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// FormatResult renders a simulation result like the titanrun tool does.
func FormatResult(r titan.Result, processors int) string {
	return fmt.Sprintf("exit=%d cycles=%d instrs=%d flops=%d mflops=%.2f procs=%d",
		r.ExitCode, r.Cycles, r.Instrs, r.FlopCount, r.MFLOPS(), processors)
}
