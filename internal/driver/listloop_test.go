package driver

import "testing"

// The §10 extension end-to-end: a linked list threaded through a node
// pool, scaled in place by a list loop. With ListParallel the per-node
// work spreads across processors and the result must still be exact.
const listProgram = `
struct node { float val; struct node *next; };
struct node pool[600];

void scale(struct node *head, float k)
{
	struct node *p;
	p = head;
	while (p) {
		p->val = p->val * k;
		p = p->next;
	}
}

int main(void)
{
	int i, bad;
	/* Thread the pool into a list in a scrambled order. */
	for (i = 0; i < 600; i++) {
		pool[i].val = i;
		if (i < 599)
			pool[i].next = &pool[i + 1];
		else
			pool[i].next = (struct node *)0;
	}
	scale(&pool[0], 3.0f);
	bad = 0;
	for (i = 0; i < 600; i++)
		if (pool[i].val != 3.0f * i) bad = bad + 1;
	return bad;
}
`

func TestListParallelCorrect(t *testing.T) {
	opts := FullOptions()
	opts.ListParallel = true
	for procs := 1; procs <= 4; procs++ {
		res, err := Run(listProgram, opts, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if res.ExitCode != 0 {
			t.Errorf("procs=%d: %d wrong nodes", procs, res.ExitCode)
		}
	}
}

func TestListParallelConverts(t *testing.T) {
	opts := FullOptions()
	opts.ListParallel = true
	res, err := Compile(listProgram, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Two sites: scale itself and its inlined copy in main.
	if res.ListStats.LoopsConverted < 1 {
		t.Fatalf("list loops converted: %d", res.ListStats.LoopsConverted)
	}
}

// heavyListProgram gives each node enough work (a polynomial evaluation)
// for the parallel region to amortize the serialized pointer chase — the
// paper's intended profile ("a computation-intensive engine").
const heavyListProgram = `
struct node { float val; struct node *next; };
struct node pool[600];

void polish(struct node *head)
{
	struct node *p;
	float x, acc;
	p = head;
	while (p) {
		x = p->val;
		acc = 1.0f + x * (1.0f + x * (1.0f + x * (1.0f + x)));
		acc = acc + acc * acc;
		acc = acc / (1.0f + x * x);
		p->val = acc;
		p = p->next;
	}
}

int main(void)
{
	int i;
	for (i = 0; i < 600; i++) {
		pool[i].val = i % 7;
		if (i < 599)
			pool[i].next = &pool[i + 1];
		else
			pool[i].next = (struct node *)0;
	}
	polish(&pool[0]);
	return 0;
}
`

func TestListParallelSpeedsUp(t *testing.T) {
	serial := FullOptions()
	par := FullOptions()
	par.ListParallel = true
	rs, err := Run(heavyListProgram, serial, 4)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(heavyListProgram, par, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Cycles >= rs.Cycles {
		t.Errorf("list parallelization did not win: %d vs %d cycles", rp.Cycles, rs.Cycles)
	}
	t.Logf("heavy list loop: serial %d cycles, parallel(P=4) %d cycles (%.2fx)",
		rs.Cycles, rp.Cycles, float64(rs.Cycles)/float64(rp.Cycles))

	// Results must be identical to the serial run's memory effects: run
	// both and compare via a checksum variant.
	check := heavyListProgram[:len(heavyListProgram)-len("\treturn 0;\n}\n")] + `
	{
		int k, bad;
		float ref[7];
		for (k = 0; k < 7; k++) {
			float x, acc;
			x = k;
			acc = 1.0f + x * (1.0f + x * (1.0f + x * (1.0f + x)));
			acc = acc + acc * acc;
			acc = acc / (1.0f + x * x);
			ref[k] = acc;
		}
		bad = 0;
		for (k = 0; k < 600; k++)
			if (pool[k].val != ref[k % 7]) bad = bad + 1;
		return bad;
	}
}
`
	for procs := 1; procs <= 4; procs++ {
		res, err := Run(check, par, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if res.ExitCode != 0 {
			t.Errorf("procs=%d: %d wrong nodes", procs, res.ExitCode)
		}
	}
}

func TestListParallelOffByDefault(t *testing.T) {
	res, err := Compile(listProgram, FullOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.ListStats.LoopsConverted != 0 {
		t.Error("list conversion ran without the option (it asserts an aliasing assumption)")
	}
}
