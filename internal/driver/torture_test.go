package driver

// A table-driven "torture" suite: each case is a small C program with a
// known exit code, run under O0, the scalar pipeline, and the full
// pipeline at 1 and 2 processors. The table leans on the constructs the
// paper calls hard about C (§1): pointer idioms, side-effecting
// operators, irregular for loops, small functions, aliasing, volatile.

import (
	"fmt"
	"testing"
)

var tortureCases = []struct {
	name string
	src  string
	want int64
}{
	{"comma-operator", `
int main(void) { int a, b; a = (b = 3, b + 1); return a * 10 + b; }
`, 43},

	{"ternary-chain", `
int grade(int s) { return s > 89 ? 4 : s > 79 ? 3 : s > 69 ? 2 : 0; }
int main(void) { return grade(95) * 100 + grade(85) * 10 + grade(50); }
`, 430},

	{"short-circuit-effects", `
int calls;
int t(void) { calls = calls + 1; return 1; }
int f(void) { calls = calls + 1; return 0; }
int main(void) {
	int r;
	calls = 0;
	r = f() && t();   /* t not called */
	r = r + (t() || f()); /* f not called */
	return calls * 10 + r;
}
`, 21},

	{"pre-vs-post", `
int main(void) {
	int i, a, b;
	i = 5;
	a = i++;
	b = ++i;
	return a * 100 + b * 10 + i;
}
`, 577},

	{"pointer-walk", `
int sum(int *p, int *end) {
	int s;
	s = 0;
	while (p != end)
		s = s + *p++;
	return s;
}
int data[5];
int main(void) {
	int i;
	for (i = 0; i < 5; i++) data[i] = i + 1;
	return sum(data, data + 5);
}
`, 15},

	{"pointer-diff", `
int a[10];
int main(void) {
	int *p, *q;
	p = &a[2];
	q = &a[9];
	return q - p;
}
`, 7},

	{"negative-modulo", `
int main(void) { return (-7 % 3) + 10; }
`, 9},

	{"shift-combine", `
int main(void) {
	int x;
	x = 1;
	x = (x << 8) | 3;
	return (x >> 4) & 0xff;
}
`, 16},

	{"nested-calls", `
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int main(void) { return add(mul(3, 4), add(5, mul(2, 10))); }
`, 37},

	{"recursive-gcd", `
int gcd(int a, int b) { if (b == 0) return a; return gcd(b, a % b); }
int main(void) { return gcd(1071, 462); }
`, 21},

	{"mutual-recursion", `
int odd(int);
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int main(void) { return even(10) * 10 + odd(10); }
`, 10},

	{"goto-cleanup", `
int main(void) {
	int x;
	x = 0;
	x = x + 1;
	if (x) goto skip;
	x = 99;
skip:
	x = x + 1;
	return x;
}
`, 2},

	{"do-while", `
int main(void) {
	int n, s;
	n = 5;
	s = 0;
	do {
		s = s + n;
		n = n - 1;
	} while (n);
	return s;
}
`, 15},

	{"break-continue", `
int main(void) {
	int i, s;
	s = 0;
	for (i = 0; i < 100; i++) {
		if (i % 2) continue;
		if (i > 10) break;
		s = s + i;
	}
	return s; /* 0+2+4+6+8+10 */
}
`, 30},

	{"switch-fallthrough", `
int main(void) {
	int r, n;
	r = 0;
	for (n = 0; n < 4; n++) {
		switch (n) {
		case 0: r = r + 1;
		case 1: r = r + 10; break;
		case 2: r = r + 100; break;
		default: r = r + 1000;
		}
	}
	return r & 0x7fff; /* 11 + 10 + 100 + 1000 */
}
`, 1121},

	{"struct-copy-semantics", `
struct pair { int a; int b; };
int take(struct pair *p) { p->a = 99; return p->b; }
int main(void) {
	struct pair x;
	x.a = 1;
	x.b = 2;
	take(&x);
	return x.a;
}
`, 99},

	{"array-of-struct", `
struct item { int k; int v; };
struct item tab[4];
int find(int k) {
	int i;
	for (i = 0; i < 4; i++)
		if (tab[i].k == k) return tab[i].v;
	return -1;
}
int main(void) {
	int i;
	for (i = 0; i < 4; i++) { tab[i].k = i * 2; tab[i].v = i * 10; }
	return find(4) * 10 + find(6);
}
`, 230},

	{"matrix-multiply", `
float a[3][3], b[3][3], c[3][3];
int main(void) {
	int i, j, k;
	for (i = 0; i < 3; i++)
		for (j = 0; j < 3; j++) {
			a[i][j] = i + j;
			b[i][j] = (i == j);
		}
	for (i = 0; i < 3; i++)
		for (j = 0; j < 3; j++) {
			float s;
			s = 0;
			for (k = 0; k < 3; k++)
				s = s + a[i][k] * b[k][j];
			c[i][j] = s;
		}
	/* c should equal a */
	for (i = 0; i < 3; i++)
		for (j = 0; j < 3; j++)
			if (c[i][j] != a[i][j]) return 1;
	return 0;
}
`, 0},

	{"aliased-copy-overlap", `
int buf[16];
int main(void) {
	int i;
	for (i = 0; i < 16; i++) buf[i] = i;
	/* overlapping shift by one: must stay serial or handle the
	   dependence correctly */
	for (i = 0; i < 15; i++) buf[i] = buf[i + 1];
	return buf[0] * 100 + buf[14];
}
`, 115},

	{"reverse-in-place", `
int v[9];
int main(void) {
	int i, j, t;
	for (i = 0; i < 9; i++) v[i] = i;
	i = 0;
	j = 8;
	while (i < j) {
		t = v[i];
		v[i] = v[j];
		v[j] = t;
		i++;
		j--;
	}
	return v[0] * 10 + v[8];
}
`, 80},

	{"char-string", `
char s[6];
int mystrlen(char *p) {
	int n;
	n = 0;
	while (*p++) n++;
	return n;
}
int main(void) {
	s[0] = 'h'; s[1] = 'e'; s[2] = 'y'; s[3] = 0;
	return mystrlen(s);
}
`, 3},

	{"sizeof-values", `
struct wide { double d; int i; };
int main(void) {
	/* The Titan model word-aligns doubles (see ctype), so struct wide
	   is 12 bytes, not 16. */
	return sizeof(int) + sizeof(char) * 10 + sizeof(double) * 100
		+ sizeof(struct wide);
}
`, 4 + 10 + 800 + 12},

	{"static-counter", `
int tick(void) { static int n; n = n + 1; return n; }
int main(void) { tick(); tick(); return tick(); }
`, 3},

	{"global-init-values", `
int base = 100;
int scale = 3;
int main(void) { return base + scale; }
`, 103},

	{"float-compare-branches", `
int cls(float x) {
	if (x < 0.0f) return 0;
	if (x == 0.0f) return 1;
	return 2;
}
int main(void) { return cls(-1.5f) * 100 + cls(0.0f) * 10 + cls(3.0f); }
`, 12},

	{"int-float-conversions", `
int main(void) {
	float f;
	int i;
	f = 7;
	i = f / 2.0f;     /* 3.5 -> 3 */
	return i * 10 + (int)(f - 0.5f);
}
`, 36},

	{"triangular-loop", `
int main(void) {
	int i, j, s;
	s = 0;
	for (i = 0; i < 6; i++)
		for (j = 0; j <= i; j++)
			s = s + 1;
	return s; /* 21 */
}
`, 21},

	{"loop-carried-scalar", `
int main(void) {
	int i, fib0, fib1, t;
	fib0 = 0;
	fib1 = 1;
	for (i = 0; i < 10; i++) {
		t = fib0 + fib1;
		fib0 = fib1;
		fib1 = t;
	}
	return fib1; /* fib(11) = 89 */
}
`, 89},

	{"compound-assignment-mix", `
int main(void) {
	int x;
	x = 100;
	x += 10;
	x -= 4;
	x *= 2;
	x /= 3;
	x %= 50;
	x <<= 2;
	x >>= 1;
	x |= 1;
	x ^= 2;
	x &= 0xff;
	return x;
}
`, func() int64 {
		x := int64(100)
		x += 10
		x -= 4
		x *= 2
		x /= 3
		x %= 50
		x <<= 2
		x >>= 1
		x |= 1
		x ^= 2
		x &= 0xff
		return x
	}()},

	{"enum-values", `
enum state { IDLE, BUSY = 5, DONE };
int main(void) { return IDLE + BUSY * 10 + DONE * 100; }
`, 650},

	{"typedef-chain", `
typedef int myint;
typedef myint *intp;
int main(void) {
	myint x;
	intp p;
	x = 7;
	p = &x;
	*p = *p + 1;
	return x;
}
`, 8},

	{"saxpy-strided", `
float y[64], x[64];
int main(void) {
	int i, bad;
	for (i = 0; i < 64; i++) { y[i] = 1; x[i] = i; }
	for (i = 0; i < 32; i++)
		y[2*i] = y[2*i] + 0.5f * x[2*i];
	bad = 0;
	for (i = 0; i < 64; i++) {
		float want;
		if (i % 2) want = 1.0f; else want = 1.0f + 0.5f * i;
		if (y[i] != want) bad = bad + 1;
	}
	return bad;
}
`, 0},

	{"conditional-store-loop", `
int a[32];
int main(void) {
	int i, s;
	for (i = 0; i < 32; i++)
		if (i % 3 == 0) a[i] = i; else a[i] = -1;
	s = 0;
	for (i = 0; i < 32; i++)
		if (a[i] >= 0) s = s + a[i];
	return s;
}
`, 0 + 3 + 6 + 9 + 12 + 15 + 18 + 21 + 24 + 27 + 30},
}

func TestTorture(t *testing.T) {
	configs := []struct {
		name  string
		opts  Options
		procs int
	}{
		{"O0", Options{OptLevel: 0}, 1},
		{"O1", ScalarOptions(), 1},
		{"full-p1", FullOptions(), 1},
		{"full-p2", FullOptions(), 2},
	}
	for _, tc := range tortureCases {
		for _, cfg := range configs {
			t.Run(fmt.Sprintf("%s/%s", tc.name, cfg.name), func(t *testing.T) {
				res, err := Run(tc.src, cfg.opts, cfg.procs)
				if err != nil {
					t.Fatalf("run: %v\nsource:\n%s", err, tc.src)
				}
				if res.ExitCode != tc.want {
					t.Fatalf("exit %d, want %d\nsource:\n%s", res.ExitCode, tc.want, tc.src)
				}
			})
		}
	}
}

// Initializer-list cases exercise the brace-initializer support added to
// the front end.
var initListCases = []struct {
	name string
	src  string
	want int64
}{
	{"global-array-init", `
int tbl[5] = {10, 20, 30, 40, 50};
int main(void) { return tbl[0] + tbl[4]; }
`, 60},

	{"global-partial-init-zeros", `
int tbl[6] = {1, 2};
int main(void) { return tbl[0] + tbl[1] + tbl[2] + tbl[5]; }
`, 3},

	{"global-float-array", `
float w[4] = {0.5f, 1.5f, 2.5f, 3.5f};
int main(void) { return (int)(w[0] + w[1] + w[2] + w[3]); }
`, 8},

	{"global-2d-init", `
int m[2][3] = {{1, 2, 3}, {4, 5, 6}};
int main(void) { return m[0][0] * 100 + m[1][2]; }
`, 106},

	{"global-struct-init", `
struct point { int x; int y; };
struct point origin = {3, 4};
int main(void) { return origin.x * 10 + origin.y; }
`, 34},

	{"global-negative-init", `
int vals[3] = {-1, -2, -3};
int main(void) { return vals[0] + vals[1] + vals[2] + 10; }
`, 4},

	{"local-array-init", `
int main(void) {
	int a[4] = {7, 8, 9, 10};
	return a[0] + a[3];
}
`, 17},

	{"local-partial-zeros", `
int main(void) {
	int a[5] = {1};
	return a[0] + a[1] + a[4];
}
`, 1},

	{"local-struct-init", `
struct pair { int a; float b; };
int main(void) {
	struct pair p = {6, 2.5f};
	return p.a + (int)(p.b * 2.0f);
}
`, 11},

	{"local-runtime-init", `
int f(int k) {
	int a[3] = {k, k * 2, k * 3};
	return a[0] + a[1] + a[2];
}
int main(void) { return f(5); }
`, 30},
}

func TestInitializerLists(t *testing.T) {
	for _, tc := range initListCases {
		for _, cfg := range []Options{{OptLevel: 0}, ScalarOptions(), FullOptions()} {
			res, err := Run(tc.src, cfg, 1)
			if err != nil {
				t.Fatalf("%s: %v\nsource:\n%s", tc.name, err, tc.src)
			}
			if res.ExitCode != tc.want {
				t.Fatalf("%s: exit %d want %d\nsource:\n%s", tc.name, res.ExitCode, tc.want, tc.src)
			}
		}
	}
}

func TestInitializerErrors(t *testing.T) {
	bad := []string{
		"int a[2] = {1, 2, 3}; int main(void){return 0;}",
		"int g; int x = g; int main(void){return 0;}",         // non-constant global init
		"int a[2] = {1, g}; int g; int main(void){return 0;}", // undeclared then declared
		"struct s {int a;}; struct s v = {1, 2}; int main(void){return 0;}",
	}
	for _, src := range bad {
		if _, err := Compile(src, ScalarOptions()); err == nil {
			t.Errorf("accepted:\n%s", src)
		}
	}
}

// Unsigned semantics: comparisons, division, shifts, and narrow loads.
var unsignedCases = []struct {
	name string
	src  string
	want int64
}{
	{"unsigned-compare", `
int main(void) {
	unsigned int a, b;
	a = 0xffffffff; /* 4294967295 as unsigned */
	b = 1;
	if (a > b) return 1; /* unsigned: huge > 1 */
	return 0;
}
`, 1},

	{"signed-compare-contrast", `
int main(void) {
	int a, b;
	a = -1;
	b = 1;
	if (a < b) return 1; /* signed: -1 < 1 */
	return 0;
}
`, 1},

	{"unsigned-divide", `
int main(void) {
	unsigned int a;
	a = 0xfffffffe;
	return a / 0x40000000; /* 4294967294 / 1073741824 = 3 */
}
`, 3},

	{"unsigned-shift-right", `
int main(void) {
	unsigned int a;
	a = 0x80000000;
	return a >> 28; /* logical: 8 */
}
`, 8},

	{"unsigned-char-load", `
unsigned char bytes[2];
int main(void) {
	bytes[0] = 200;
	return bytes[0]; /* zero-extends to 200, not -56 */
}
`, 200},

	{"signed-char-load-contrast", `
char bytes[2];
int main(void) {
	bytes[0] = 200;
	return bytes[0] + 256; /* sign-extends to -56 */
}
`, 200},
}

func TestUnsignedSemantics(t *testing.T) {
	for _, tc := range unsignedCases {
		for _, cfg := range []Options{{OptLevel: 0}, ScalarOptions()} {
			res, err := Run(tc.src, cfg, 1)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if res.ExitCode != tc.want {
				t.Errorf("%s (opts %+v): exit %d want %d", tc.name, cfg, res.ExitCode, tc.want)
			}
		}
	}
}
