// Cache-key canonicalization: the compile service's content-addressed
// artifact cache keys each compile by SHA-256 over the source text plus a
// canonical rendering of the Options. Canonical means two Options values
// that compile identically hash identically — attached catalogs are
// identified by content fingerprint and sorted, defaulted fields are
// resolved, and flags that cannot affect this compile (a vector length
// with vectorization off, an inline policy with inlining off) are left
// out entirely.
package driver

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/inline"
	"repro/internal/vector"
)

// CacheKey returns the content-addressed identity of one compile: the
// SHA-256 hex digest over the source and the canonicalized options
// (including every attached catalog's content fingerprint). Two calls
// return equal keys exactly when Compile would produce identical
// artifacts for them.
func CacheKey(src string, opts Options) (string, error) {
	canon, err := CanonicalOptions(opts)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "src:%d\n", len(src))
	io.WriteString(h, src)
	io.WriteString(h, canon)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CanonicalOptions renders opts in the canonical textual form CacheKey
// hashes. The encoding mirrors what the pipeline actually consumes
// (pass.BuildPipeline and the codegen scheduling rule), so semantically
// inert differences collapse:
//
//   - catalogs are replaced by their sorted, deduplicated content
//     fingerprints — attachment order and duplicate attachments don't
//     matter, and neither do catalogs when inlining is off;
//   - a nil InlineConfig renders as inline.DefaultConfig();
//   - VL 0 renders as vector.DefaultVL, and only when vectorizing;
//   - the scalar-optimizer knobs render only at OptLevel ≥ 1, and
//     induction-variable substitution renders as the derived on/off the
//     scalarizer actually sees (§6's "only when consumed" rule);
//   - NoAlias renders only when a dependence-analysis client runs;
//   - scheduling renders as the derived boolean codegen tests.
func CanonicalOptions(opts Options) (string, error) {
	var sb strings.Builder
	sb.WriteString("opts/v1\n")

	optimize := opts.OptLevel >= 1
	strengthOn := opts.StrengthReduce && optimize
	fmt.Fprintf(&sb, "optimize=%t\n", optimize)

	fmt.Fprintf(&sb, "inline=%t\n", opts.Inline)
	if opts.Inline {
		cfg := inline.DefaultConfig()
		if opts.InlineConfig != nil {
			cfg = *opts.InlineConfig
		}
		only := make([]string, 0, len(cfg.Only))
		for name, ok := range cfg.Only {
			if ok {
				only = append(only, name)
			}
		}
		sort.Strings(only)
		restricted := len(cfg.Only) > 0 // a non-empty all-false map inlines nothing, unlike an empty map
		fmt.Fprintf(&sb, "inline.maxstmts=%d\ninline.maxdepth=%d\ninline.restricted=%t\ninline.only=%s\n",
			cfg.MaxStmts, cfg.MaxDepth, restricted, strings.Join(only, ","))

		fps := make([]string, 0, len(opts.Catalogs))
		for _, c := range opts.Catalogs {
			fp, err := c.Fingerprint()
			if err != nil {
				return "", fmt.Errorf("driver: fingerprinting attached catalog: %w", err)
			}
			fps = append(fps, fp)
		}
		sort.Strings(fps)
		fps = dedupSorted(fps)
		fmt.Fprintf(&sb, "catalogs=%s\n", strings.Join(fps, ","))
	}

	if optimize {
		// The derivation the pass manager applies (pass.scalarOptions).
		ivsub := !opts.DisableIVSub && (opts.Vectorize || opts.StrengthReduce || opts.ForceIVSub)
		fmt.Fprintf(&sb, "scalar.ivsub=%t\nscalar.simpleivsub=%t\nscalar.nocopyprop=%t\n",
			ivsub, opts.SimpleIVSub, opts.NoCopyProp)
	}

	fmt.Fprintf(&sb, "parallelize=%t\n", opts.Parallelize)
	fmt.Fprintf(&sb, "vectorize=%t\n", opts.Vectorize)
	if opts.Vectorize {
		vl := opts.VL
		if vl <= 0 {
			vl = vector.DefaultVL
		}
		fmt.Fprintf(&sb, "vl=%d\n", vl)
	}
	fmt.Fprintf(&sb, "listparallel=%t\n", opts.ListParallel)
	if opts.Vectorize || opts.Parallelize || strengthOn {
		fmt.Fprintf(&sb, "noalias=%t\n", opts.NoAlias)
	}
	fmt.Fprintf(&sb, "strength=%t\n", strengthOn)
	if strengthOn {
		fmt.Fprintf(&sb, "strength.nopromotion=%t\nstrength.noreduction=%t\n",
			opts.NoStrengthPromotion, opts.NoStrengthReduction)
	}
	// Codegen's rule: schedule whenever a dependence-driven phase was
	// requested, unless ablated (driver.CompileWith).
	fmt.Fprintf(&sb, "schedule=%t\n", (opts.StrengthReduce || opts.Vectorize) && !opts.NoSchedule)
	return sb.String(), nil
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
