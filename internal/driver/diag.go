package driver

import (
	"errors"

	"repro/internal/diag"
	"repro/internal/lexer"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sema"
)

// ErrorDiagnostic converts a front-end failure into a positioned,
// coded diagnostic. The lexer, parser, type checker, and lowerer each
// carry a token.Pos on their error types; this is the single place those
// ad-hoc error shapes become the structured diag form the service and
// tools report. The bool is false for errors with no front-end position
// (pipeline or codegen failures), which callers report untyped.
func ErrorDiagnostic(err error) (diag.Diagnostic, bool) {
	var (
		le *lexer.Error
		pe *parser.Error
		se *sema.Error
		we *lower.Error
	)
	switch {
	case errors.As(err, &le):
		return diag.Diagnostic{Severity: diag.SevError, Code: diag.LexError, Pos: le.Pos, Pass: "lex", Message: le.Msg}, true
	case errors.As(err, &pe):
		return diag.Diagnostic{Severity: diag.SevError, Code: diag.ParseError, Pos: pe.Pos, Pass: "parse", Message: pe.Msg}, true
	case errors.As(err, &se):
		return diag.Diagnostic{Severity: diag.SevError, Code: diag.SemaError, Pos: se.Pos, Pass: "sema", Message: se.Msg}, true
	case errors.As(err, &we):
		return diag.Diagnostic{Severity: diag.SevError, Code: diag.LowerError, Pos: we.Pos, Pass: "lower", Message: we.Msg}, true
	}
	return diag.Diagnostic{}, false
}
