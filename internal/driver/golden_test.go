package driver

// Golden tests pin the IL that the pipeline produces for the paper's
// centerpiece programs. Regenerate after an intentional change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/driver -run Golden

import (
	"os"
	"path/filepath"
	"testing"
)

const goldenDaxpy = `
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
	if (n <= 0)
		return;
	if (alpha == 0)
		return;
	for (; n; n--)
		*x++ = *y++ + alpha * *z++;
}

int main(void)
{
	float a[100], b[100], c[100];
	daxpy(a, b, c, 1.0, 100);
	return 0;
}
`

const goldenBacksolve = `
void backsolve(float *x, float *y, float *z, int n)
{
	float *p, *q;
	int i;
	p = &x[1];
	q = &x[0];
	for (i = 0; i < n-2; i++)
		p[i] = z[i] * (y[i] - q[i]);
}
`

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with UPDATE_GOLDEN=1): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("golden mismatch for %s.\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}

func TestGoldenDaxpyFinalIL(t *testing.T) {
	res, err := CompileIL(goldenDaxpy, FullOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "daxpy_main_full.il", res.IL.Proc("main").String())
}

func TestGoldenBacksolveStrengthIL(t *testing.T) {
	res, err := CompileIL(goldenBacksolve, Options{
		OptLevel: 1, NoAlias: true, StrengthReduce: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "backsolve_full.il", res.IL.Proc("backsolve").String())
}

func TestGoldenCopyLoopScalarIL(t *testing.T) {
	src := `
void copyloop(float *a, float *b, int n)
{
	while (n) {
		*a++ = *b++;
		n--;
	}
}
`
	res, err := CompileIL(src, Options{OptLevel: 1, ForceIVSub: true})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "copyloop_scalar.il", res.IL.Proc("copyloop").String())
}
