package driver

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/inline"
	"repro/internal/titan"
)

// runSrc compiles and runs on a machine with the given processor count.
func runSrc(t *testing.T, src string, opts Options, procs int) titan.Result {
	t.Helper()
	res, err := Run(src, opts, procs)
	if err != nil {
		t.Fatalf("run: %v\nsource:\n%s", err, src)
	}
	return res
}

func TestReturnConstant(t *testing.T) {
	res := runSrc(t, "int main(void) { return 42; }", ScalarOptions(), 1)
	if res.ExitCode != 42 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"100 / 7", 14},
		{"100 % 7", 2},
		{"1 << 10", 1024},
		{"255 & 15", 15},
		{"8 | 1", 9},
		{"5 ^ 3", 6},
		{"~0 + 2", 1},
		{"-7 + 10", 3},
		{"!5", 0},
		{"!0", 1},
		{"3 < 4", 1},
		{"4 <= 3", 0},
		{"7 == 7", 1},
		{"7 != 7", 0},
	}
	for _, c := range cases {
		src := "int main(void) { return " + c.expr + "; }"
		// Use O0-ish path too? Constant folding handles these at compile
		// time; also verify through variables so the machine computes.
		res := runSrc(t, src, ScalarOptions(), 1)
		if res.ExitCode != c.want {
			t.Errorf("%s = %d, want %d", c.expr, res.ExitCode, c.want)
		}
	}
}

func TestRuntimeArithmetic(t *testing.T) {
	// Defeat constant folding with a helper function parameter.
	src := `
int compute(int a, int b) {
	int r;
	r = a * b + a % b - (a >> 2);
	return r;
}
int main(void) { return compute(37, 5); }
`
	res := runSrc(t, src, Options{OptLevel: 1}, 1)
	want := int64(37*5 + 37%5 - (37 >> 2))
	if res.ExitCode != want {
		t.Errorf("exit %d want %d", res.ExitCode, want)
	}
}

func TestFloatArithmetic(t *testing.T) {
	src := `
float halve(float x) { return x / 2.0f; }
int main(void) {
	float v;
	v = halve(7.0f);
	if (v == 3.5f) return 1;
	return 0;
}
`
	if res := runSrc(t, src, ScalarOptions(), 1); res.ExitCode != 1 {
		t.Errorf("7/2 != 3.5")
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
int histogram[10];
int main(void) {
	int i, total;
	for (i = 0; i < 10; i++)
		histogram[i] = i * i;
	total = 0;
	for (i = 0; i < 10; i++)
		total = total + histogram[i];
	return total; /* 285 */
}
`
	if res := runSrc(t, src, ScalarOptions(), 1); res.ExitCode != 285 {
		t.Errorf("exit %d want 285", res.ExitCode)
	}
}

func TestPointersAndAddressOf(t *testing.T) {
	src := `
void set(int *p, int v) { *p = v; }
int main(void) {
	int x;
	set(&x, 77);
	return x;
}
`
	if res := runSrc(t, src, Options{OptLevel: 1}, 1); res.ExitCode != 77 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestStructAccess(t *testing.T) {
	src := `
struct point { int x; int y; };
int main(void) {
	struct point p;
	p.x = 30;
	p.y = 12;
	return p.x + p.y;
}
`
	if res := runSrc(t, src, ScalarOptions(), 1); res.ExitCode != 42 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestStringAndPrintf(t *testing.T) {
	src := `
int printf(char *fmt, ...);
int main(void) {
	printf("n=%d\n", 5 + 5);
	return 0;
}
`
	res := runSrc(t, src, ScalarOptions(), 1)
	if res.Output != "n=10\n" {
		t.Errorf("output %q", res.Output)
	}
}

func TestRecursionRuns(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(10); }
`
	if res := runSrc(t, src, ScalarOptions(), 1); res.ExitCode != 55 {
		t.Errorf("fib(10) = %d", res.ExitCode)
	}
}

func TestSwitchRuns(t *testing.T) {
	src := `
int classify(int n) {
	switch (n) {
	case 0: return 100;
	case 1:
	case 2: return 200;
	default: return 300;
	}
}
int main(void) {
	return classify(0) + classify(1) + classify(2) + classify(9);
}
`
	if res := runSrc(t, src, ScalarOptions(), 1); res.ExitCode != 800 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestWhilePointerCopyCorrect(t *testing.T) {
	// §5.3's loop must compute a correct copy under every optimization
	// level.
	src := `
float src_a[64], dst_a[64];
void copyloop(float *a, float *b, int n) {
	while (n) {
		*a++ = *b++;
		n--;
	}
}
int main(void) {
	int i, bad;
	for (i = 0; i < 64; i++) src_a[i] = i * 2;
	copyloop(dst_a, src_a, 64);
	bad = 0;
	for (i = 0; i < 64; i++)
		if (dst_a[i] != i * 2) bad = bad + 1;
	return bad;
}
`
	for _, opts := range []Options{{OptLevel: 0}, ScalarOptions(), FullOptions()} {
		res := runSrc(t, src, opts, 1)
		if res.ExitCode != 0 {
			t.Errorf("opts %+v: %d mismatches", opts, res.ExitCode)
		}
	}
}

func TestDaxpyCorrectAllConfigs(t *testing.T) {
	src := `
float xa[100], ya[100], za[100];
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
	if (n <= 0)
		return;
	if (alpha == 0)
		return;
	for (; n; n--)
		*x++ = *y++ + alpha * *z++;
}
int main(void)
{
	int i, bad;
	for (i = 0; i < 100; i++) {
		ya[i] = i;
		za[i] = 2 * i;
	}
	daxpy(xa, ya, za, 3.0f, 100);
	bad = 0;
	for (i = 0; i < 100; i++)
		if (xa[i] != i + 3.0f * (2 * i)) bad = bad + 1;
	return bad;
}
`
	for procs := 1; procs <= 4; procs++ {
		for _, opts := range []Options{{OptLevel: 0}, ScalarOptions(), FullOptions()} {
			res := runSrc(t, src, opts, procs)
			if res.ExitCode != 0 {
				t.Errorf("procs=%d opts=%+v: %d mismatches", procs, opts, res.ExitCode)
			}
		}
	}
}

func TestVectorizedFasterThanScalar(t *testing.T) {
	src := `
float a[4096], b[4096], c[4096];
int main(void) {
	int i;
	for (i = 0; i < 4096; i++) {
		b[i] = i;
		c[i] = 1;
	}
	for (i = 0; i < 4096; i++)
		a[i] = b[i] + 2.0f * c[i];
	return 0;
}
`
	scalar := runSrc(t, src, ScalarOptions(), 1)
	vec := runSrc(t, src, Options{OptLevel: 1, Vectorize: true, StrengthReduce: true}, 1)
	if vec.Cycles >= scalar.Cycles {
		t.Errorf("vector %d cycles, scalar %d", vec.Cycles, scalar.Cycles)
	}
	speedup := float64(scalar.Cycles) / float64(vec.Cycles)
	if speedup < 1.5 {
		t.Errorf("vector speedup only %.2f", speedup)
	}
	t.Logf("vector speedup %.2fx (scalar %d, vector %d cycles)", speedup, scalar.Cycles, vec.Cycles)
}

func TestParallelScaling(t *testing.T) {
	src := `
float a[8192], b[8192], c[8192];
int main(void) {
	int i;
	for (i = 0; i < 8192; i++) {
		b[i] = i;
		c[i] = 3;
	}
	for (i = 0; i < 8192; i++)
		a[i] = b[i] * c[i] + b[i];
	return 0;
}
`
	r1 := runSrc(t, src, FullOptions(), 1)
	r2 := runSrc(t, src, FullOptions(), 2)
	r4 := runSrc(t, src, FullOptions(), 4)
	if r2.Cycles >= r1.Cycles || r4.Cycles >= r2.Cycles {
		t.Errorf("no scaling: p1=%d p2=%d p4=%d", r1.Cycles, r2.Cycles, r4.Cycles)
	}
	t.Logf("cycles p1=%d p2=%d p4=%d", r1.Cycles, r2.Cycles, r4.Cycles)
}

func TestBacksolveCorrectAndFaster(t *testing.T) {
	// E1 behavior check: §6 transformations preserve the recurrence
	// semantics and speed it up.
	src := `
float x[256], y[256], z[256];
void backsolve(float *xv, float *yv, float *zv, int n)
{
	float *p, *q;
	int i;
	p = &xv[1];
	q = &xv[0];
	for (i = 0; i < n-2; i++)
		p[i] = zv[i] * (yv[i] - q[i]);
}
int main(void)
{
	int i;
	float expect, got;
	for (i = 0; i < 256; i++) {
		x[i] = 1.0f;
		y[i] = i;
		z[i] = 0.5f;
	}
	backsolve(x, y, z, 256);
	/* Recompute serially with plain indexing and compare. */
	for (i = 0; i < 256; i++) x[i] = 1.0f;
	/* keep a reference copy in z2 */
	return 0;
}
`
	base := runSrc(t, src, Options{OptLevel: 1, NoAlias: true}, 1)
	optd := runSrc(t, src, Options{OptLevel: 1, NoAlias: true, StrengthReduce: true}, 1)
	if optd.Cycles > base.Cycles {
		t.Errorf("strength reduction slowed the loop: %d vs %d", optd.Cycles, base.Cycles)
	}
	t.Logf("backsolve cycles: base=%d §6-optimized=%d (%.2fx)",
		base.Cycles, optd.Cycles, float64(base.Cycles)/float64(optd.Cycles))
}

func TestBacksolveNumericallyCorrect(t *testing.T) {
	src := `
float x[64], y[64], z[64], ref[64];
void backsolve(float *xv, float *yv, float *zv, int n)
{
	float *p, *q;
	int i;
	p = &xv[1];
	q = &xv[0];
	for (i = 0; i < n-2; i++)
		p[i] = zv[i] * (yv[i] - q[i]);
}
int main(void)
{
	int i, bad;
	for (i = 0; i < 64; i++) {
		x[i] = 1.0f;
		ref[i] = 1.0f;
		y[i] = i;
		z[i] = 0.5f;
	}
	backsolve(x, y, z, 64);
	for (i = 0; i < 62; i++)
		ref[i+1] = z[i] * (y[i] - ref[i]);
	bad = 0;
	for (i = 0; i < 64; i++)
		if (x[i] != ref[i]) bad = bad + 1;
	return bad;
}
`
	for _, opts := range []Options{{OptLevel: 0}, ScalarOptions(), {OptLevel: 1, NoAlias: true, StrengthReduce: true}} {
		res := runSrc(t, src, opts, 1)
		if res.ExitCode != 0 {
			t.Errorf("opts %+v: %d mismatches", opts, res.ExitCode)
		}
	}
}

func TestInlineCatalogPipeline(t *testing.T) {
	lib := `
float fmadd(float a, float b, float c) { return a * b + c; }
`
	var buf bytes.Buffer
	if err := WriteCatalogFromSource(&buf, lib); err != nil {
		t.Fatal(err)
	}
	cat, err := inline.ReadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := `
float fmadd(float a, float b, float c);
int main(void) {
	float r;
	r = fmadd(2.0f, 3.0f, 4.0f);
	if (r == 10.0f) return 1;
	return 0;
}
`
	opts := FullOptions()
	opts.Catalogs = []*inline.Catalog{cat}
	res, err := Compile(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.InlinedCalls != 1 {
		t.Errorf("inlined %d calls", res.InlinedCalls)
	}
	m := titan.NewMachine(res.Machine, 1)
	r, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 1 {
		t.Errorf("exit %d", r.ExitCode)
	}
}

func TestVolatileBusyWaitPreserved(t *testing.T) {
	// The §1 loop must still poll under full optimization: we verify the
	// load stays inside the loop by checking the generated code contains
	// a load between the loop's branches. Simulating it would hang, so we
	// only inspect.
	src := `
volatile int keyboard_status;
int main(void) {
	keyboard_status = 1; /* pre-set so a simulation would exit */
	while (!keyboard_status) ;
	return keyboard_status;
}
`
	res, err := Compile(src, FullOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := titan.NewMachine(res.Machine, 1)
	r, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 1 {
		t.Errorf("exit %d", r.ExitCode)
	}
	asm := Disassemble(res)
	if !strings.Contains(asm, "ld4") {
		t.Errorf("volatile load vanished:\n%s", asm)
	}
}

func TestMatrix4x4NoStripLoop(t *testing.T) {
	// §5.2/§10: 4×4 graphics transforms vectorize without strip loops.
	src := `
struct xform { float m[4][4]; };
struct xform world;
float vin[4], vout[4];
int main(void) {
	int i, j;
	for (i = 0; i < 4; i++)
		for (j = 0; j < 4; j++)
			world.m[i][j] = (i == j);
	vin[0] = 1; vin[1] = 2; vin[2] = 3; vin[3] = 4;
	for (i = 0; i < 4; i++) {
		float s;
		s = 0;
		for (j = 0; j < 4; j++)
			s = s + world.m[i][j] * vin[j];
		vout[i] = s;
	}
	if (vout[0] == 1.0f && vout[1] == 2.0f && vout[2] == 3.0f && vout[3] == 4.0f)
		return 1;
	return 0;
}
`
	res := runSrc(t, src, FullOptions(), 1)
	if res.ExitCode != 1 {
		t.Errorf("identity transform wrong: exit %d", res.ExitCode)
	}
}

func TestMFLOPSReported(t *testing.T) {
	src := `
float a[1024], b[1024];
int main(void) {
	int i;
	for (i = 0; i < 1024; i++) b[i] = i;
	for (i = 0; i < 1024; i++) a[i] = b[i] * 2.0f + 1.0f;
	return 0;
}
`
	res := runSrc(t, src, FullOptions(), 1)
	if res.FlopCount < 2048 {
		t.Errorf("flops %d (want ≥ 2048)", res.FlopCount)
	}
	if res.MFLOPS() <= 0 || math.IsInf(res.MFLOPS(), 0) {
		t.Errorf("MFLOPS %f", res.MFLOPS())
	}
}

func TestDisassembleAndDump(t *testing.T) {
	src := "int main(void) { return 7; }"
	res, err := Compile(src, ScalarOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Disassemble(res), "main:") {
		t.Error("disassembly missing main")
	}
	if !strings.Contains(DumpIL(res), "proc main") {
		t.Error("IL dump missing main")
	}
	r, _ := titan.NewMachine(res.Machine, 1).Run("main")
	if !strings.Contains(FormatResult(r, 1), "exit=7") {
		t.Error("FormatResult missing exit code")
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	if _, err := Compile("int main(void) { return x; }", ScalarOptions()); err == nil {
		t.Error("undeclared identifier accepted")
	}
	if _, err := Compile("int main(void { return 0; }", ScalarOptions()); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestSumReductionCorrect(t *testing.T) {
	// Reductions stay serial but must stay correct everywhere.
	src := `
float vals[512];
int main(void) {
	int i;
	float s;
	for (i = 0; i < 512; i++) vals[i] = 0.5f;
	s = 0;
	for (i = 0; i < 512; i++) s = s + vals[i];
	if (s == 256.0f) return 1;
	return 0;
}
`
	for _, opts := range []Options{ScalarOptions(), FullOptions()} {
		if res := runSrc(t, src, opts, 2); res.ExitCode != 1 {
			t.Errorf("opts %+v: wrong sum", opts)
		}
	}
}

func TestCharShortMemory(t *testing.T) {
	src := `
char bytes[16];
short halves[16];
int main(void) {
	int i, total;
	for (i = 0; i < 16; i++) {
		bytes[i] = i * 3;
		halves[i] = i * 100;
	}
	total = 0;
	for (i = 0; i < 16; i++)
		total = total + bytes[i] + halves[i];
	return total & 0x7fff;
}
`
	want := int64(0)
	for i := int64(0); i < 16; i++ {
		want += int64(int8(i*3)) + i*100
	}
	want &= 0x7fff
	if res := runSrc(t, src, ScalarOptions(), 1); res.ExitCode != want {
		t.Errorf("exit %d want %d", res.ExitCode, want)
	}
}

func TestDoubleArithmetic(t *testing.T) {
	src := `
double acc[8];
int main(void) {
	int i;
	double s;
	for (i = 0; i < 8; i++) acc[i] = 0.1;
	s = 0.0;
	for (i = 0; i < 8; i++) s = s + acc[i];
	/* 8 * 0.1 in double: compare against the same computation */
	if (s > 0.79 && s < 0.81) return 1;
	return 0;
}
`
	if res := runSrc(t, src, ScalarOptions(), 1); res.ExitCode != 1 {
		t.Errorf("double accumulation wrong")
	}
}
