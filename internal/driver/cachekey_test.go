package driver

import (
	"strings"
	"testing"

	"repro/internal/inline"
	"repro/internal/vector"
)

func testCatalog(t *testing.T, src string) *inline.Catalog {
	t.Helper()
	res := &Result{}
	if err := frontEnd(src, res, 1); err != nil {
		t.Fatalf("front end: %v", err)
	}
	return inline.BuildCatalog(res.IL)
}

func key(t *testing.T, src string, opts Options) string {
	t.Helper()
	k, err := CacheKey(src, opts)
	if err != nil {
		t.Fatalf("CacheKey: %v", err)
	}
	return k
}

const ckSrc = "int main(void) { return 0; }"

func TestCacheKeyCatalogOrderIrrelevant(t *testing.T) {
	ca := testCatalog(t, "int addone(int x) { return x + 1; }")
	cb := testCatalog(t, "float half(float x) { return x / 2; }")
	base := FullOptions()
	a, b := base, base
	a.Catalogs = []*inline.Catalog{ca, cb}
	b.Catalogs = []*inline.Catalog{cb, ca}
	if key(t, ckSrc, a) != key(t, ckSrc, b) {
		t.Error("catalog attachment order changed the key")
	}
	// Attaching the same content twice is the same compile.
	dup := base
	dup.Catalogs = []*inline.Catalog{ca, cb, ca}
	if key(t, ckSrc, a) != key(t, ckSrc, dup) {
		t.Error("duplicate catalog attachment changed the key")
	}
	// A genuinely different catalog set is a different compile.
	one := base
	one.Catalogs = []*inline.Catalog{ca}
	if key(t, ckSrc, a) == key(t, ckSrc, one) {
		t.Error("dropping a catalog kept the key")
	}
}

func TestCacheKeyIrrelevantFieldsCollapse(t *testing.T) {
	cat := testCatalog(t, "int addone(int x) { return x + 1; }")
	cases := []struct {
		name string
		a, b Options
	}{
		{"nil vs explicit default inline config",
			Options{OptLevel: 1, Inline: true},
			Options{OptLevel: 1, Inline: true, InlineConfig: ptr(inline.DefaultConfig())}},
		{"VL zero vs explicit default",
			Options{OptLevel: 1, Vectorize: true},
			Options{OptLevel: 1, Vectorize: true, VL: vector.DefaultVL}},
		{"VL without vectorization",
			Options{OptLevel: 1},
			Options{OptLevel: 1, VL: 8}},
		{"catalogs without inlining",
			Options{OptLevel: 1},
			Options{OptLevel: 1, Catalogs: []*inline.Catalog{cat}}},
		{"inline config without inlining",
			Options{OptLevel: 1},
			Options{OptLevel: 1, InlineConfig: &inline.Config{MaxStmts: 5}}},
		{"noalias with no dependence client",
			Options{OptLevel: 1},
			Options{OptLevel: 1, NoAlias: true}},
		{"scalar knobs at O0",
			Options{},
			Options{SimpleIVSub: true, NoCopyProp: true, DisableIVSub: true}},
		{"opt level above one",
			Options{OptLevel: 1, StrengthReduce: true},
			Options{OptLevel: 2, StrengthReduce: true}},
	}
	for _, c := range cases {
		if key(t, ckSrc, c.a) != key(t, ckSrc, c.b) {
			t.Errorf("%s: keys differ but compiles are identical", c.name)
		}
	}
}

func TestCacheKeySemanticFlagsDiffer(t *testing.T) {
	base := FullOptions()
	flip := []struct {
		name string
		mut  func(*Options)
	}{
		{"-vector off", func(o *Options) { o.Vectorize = false }},
		{"-parallel off", func(o *Options) { o.Parallelize = false }},
		{"-inline off", func(o *Options) { o.Inline = false }},
		{"-noalias", func(o *Options) { o.NoAlias = true }},
		{"-vl 8", func(o *Options) { o.VL = 8 }},
		{"list-parallel", func(o *Options) { o.ListParallel = true }},
		{"strength off", func(o *Options) { o.StrengthReduce = false }},
		{"O0", func(o *Options) { o.OptLevel = 0 }},
		{"simple ivsub", func(o *Options) { o.SimpleIVSub = true }},
		{"no copyprop", func(o *Options) { o.NoCopyProp = true }},
		{"no schedule", func(o *Options) { o.NoSchedule = true }},
		{"no strength promotion", func(o *Options) { o.NoStrengthPromotion = true }},
		{"inline policy tightened", func(o *Options) { o.InlineConfig = &inline.Config{MaxStmts: 1, MaxDepth: 1} }},
	}
	baseKey := key(t, ckSrc, base)
	seen := map[string]string{baseKey: "base"}
	for _, f := range flip {
		o := base
		f.mut(&o)
		k := key(t, ckSrc, o)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s: key collides with %s", f.name, prev)
		}
		seen[k] = f.name
	}
}

func TestCacheKeySourceSensitive(t *testing.T) {
	opts := ScalarOptions()
	if key(t, "int main(void){return 0;}", opts) == key(t, "int main(void){return 1;}", opts) {
		t.Error("different sources share a key")
	}
}

func TestCanonicalOptionsReadable(t *testing.T) {
	canon, err := CanonicalOptions(FullOptions())
	if err != nil {
		t.Fatalf("CanonicalOptions: %v", err)
	}
	for _, want := range []string{"opts/v1", "inline=true", "vectorize=true", "vl=32", "schedule=true"} {
		if !strings.Contains(canon, want) {
			t.Errorf("canonical form lacks %q:\n%s", want, canon)
		}
	}
}

func ptr[T any](v T) *T { return &v }
