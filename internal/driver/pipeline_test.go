package driver

// Tests for the pass-manager integration: per-procedure stats must sum
// correctly through the pipeline Report (the merge the old OptimizeIL did
// with += had no direct test), and the merge must be deterministic under
// the concurrent per-procedure worker pool (run these with -race).

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/pass"
)

// kernelProc returns a vectorizable + strength-reducible procedure named
// name: one counted copy loop (vectorizes) plus one loop with a carried
// dependence of unknown distance (stays serial — even DOACROSS needs a
// computable constant distance — and gets strength-reduced addressing).
func kernelProc(name string) string {
	return fmt.Sprintf(`
void %[1]s(float *a, float *b, int n)
{
	int i;
	for (i = 0; i < n; i++)
		a[i] = b[i] + 1.0f;
	for (i = 1; i < n; i++)
		a[2*i] = a[i] * b[i];
}
`, name)
}

// aggOpts avoids inlining so each procedure's loop stats are independent
// of how many other procedures the unit has.
func aggOpts() Options {
	return Options{OptLevel: 1, Vectorize: true, Parallelize: true, StrengthReduce: true, NoAlias: true}
}

// TestReportSumsPerProcStats compiles K copies of the same kernel in one
// unit and checks every stats field is exactly K times the single-proc
// value.
func TestReportSumsPerProcStats(t *testing.T) {
	single, err := CompileIL(kernelProc("k0"), aggOpts())
	if err != nil {
		t.Fatal(err)
	}
	one := single.Report
	if one.Vector.LoopsVectorized == 0 {
		t.Fatalf("kernel does not vectorize; stats: %+v", one.Vector)
	}
	if one.Strength.LoopsTransformed == 0 {
		t.Fatalf("kernel has no strength-reduced loop; stats: %+v", one.Strength)
	}

	const k = 7
	src := ""
	for i := 0; i < k; i++ {
		src += kernelProc(fmt.Sprintf("k%d", i))
	}
	many, err := CompileIL(src, aggOpts())
	if err != nil {
		t.Fatal(err)
	}
	rep := many.Report

	scale := func(n int) int { return n * k }
	if got, want := rep.Vector.LoopsExamined, scale(one.Vector.LoopsExamined); got != want {
		t.Errorf("Vector.LoopsExamined = %d, want %d", got, want)
	}
	if got, want := rep.Vector.LoopsVectorized, scale(one.Vector.LoopsVectorized); got != want {
		t.Errorf("Vector.LoopsVectorized = %d, want %d", got, want)
	}
	if got, want := rep.Vector.VectorStmts, scale(one.Vector.VectorStmts); got != want {
		t.Errorf("Vector.VectorStmts = %d, want %d", got, want)
	}
	if got, want := rep.Vector.ParallelLoops, scale(one.Vector.ParallelLoops); got != want {
		t.Errorf("Vector.ParallelLoops = %d, want %d", got, want)
	}
	if got, want := rep.Parallel.LoopsExamined, scale(one.Parallel.LoopsExamined); got != want {
		t.Errorf("Parallel.LoopsExamined = %d, want %d", got, want)
	}
	if got, want := rep.Strength.LoopsTransformed, scale(one.Strength.LoopsTransformed); got != want {
		t.Errorf("Strength.LoopsTransformed = %d, want %d", got, want)
	}
	if got, want := rep.Strength.ReducedRefs, scale(one.Strength.ReducedRefs); got != want {
		t.Errorf("Strength.ReducedRefs = %d, want %d", got, want)
	}
	if got, want := rep.Strength.Pointers, scale(one.Strength.Pointers); got != want {
		t.Errorf("Strength.Pointers = %d, want %d", got, want)
	}
	for name, n := range one.Scalar {
		if got := rep.Scalar[name]; got != scale(n) {
			t.Errorf("Scalar[%s] = %d, want %d", name, got, scale(n))
		}
	}

	// The legacy Result mirrors must match the report exactly.
	if many.VectorStats != rep.Vector || many.StrengthStats != rep.Strength ||
		many.ParallelStats != rep.Parallel || many.NestStats != rep.Nest {
		t.Error("Result stat mirrors disagree with Report")
	}
}

// stripTimes clears the wall-clock fields so reports compare by content.
func stripTimes(r *pass.Report) *pass.Report {
	c := *r
	c.Passes = append([]pass.PassStat(nil), r.Passes...)
	for i := range c.Passes {
		c.Passes[i].Duration = 0
	}
	return &c
}

// TestReportDeterministicUnderWorkerPool runs the same multi-procedure
// compile repeatedly at several pool widths and demands the identical
// Report (and identical final IL) every time — the deterministic-merge
// guarantee of the per-procedure worker pool.
func TestReportDeterministicUnderWorkerPool(t *testing.T) {
	src := ""
	for i := 0; i < 9; i++ {
		src += kernelProc(fmt.Sprintf("k%d", i))
	}
	var baseRep *pass.Report
	var baseIL string
	for _, workers := range []int{1, 2, 8} {
		for run := 0; run < 3; run++ {
			ctx := pass.NewContext()
			ctx.Workers = workers
			res, err := CompileILWith(src, aggOpts(), ctx)
			if err != nil {
				t.Fatal(err)
			}
			rep := stripTimes(res.Report)
			ilText := res.IL.String()
			if baseRep == nil {
				baseRep, baseIL = rep, ilText
				continue
			}
			if !reflect.DeepEqual(rep, baseRep) {
				t.Fatalf("workers=%d run=%d: report differs\n got %+v\nwant %+v", workers, run, rep, baseRep)
			}
			if ilText != baseIL {
				t.Fatalf("workers=%d run=%d: final IL differs", workers, run)
			}
		}
	}
}

// TestRunEntryMissing pins the clear error for an absent entry symbol.
func TestRunEntryMissing(t *testing.T) {
	src := "int helper(int x) { return x + 1; }"
	if _, err := RunEntry(src, "main", ScalarOptions(), 1); err == nil {
		t.Fatal("missing entry function should error")
	} else if want := `entry function "main" is not defined`; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}

// TestRunEntryNamed runs a program from a non-main entry point.
func TestRunEntryNamed(t *testing.T) {
	src := `
int main(void) { return 1; }
int start(void) { return 42; }
`
	r, err := RunEntry(src, "start", ScalarOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", r.ExitCode)
	}
	// Default entry is still main.
	r, err = RunEntry(src, "", ScalarOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 1 {
		t.Errorf("default-entry exit = %d, want 1", r.ExitCode)
	}
}
