// Package ast defines the abstract syntax tree produced by the parser.
//
// The AST is a faithful representation of the C source: ?:, &&, ||, comma,
// ++/-- and embedded assignments all appear as expression nodes. The lower
// package is responsible for rewriting them into the side-effect-free IL.
package ast

import (
	"repro/internal/ctype"
	"repro/internal/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------- Expressions

// Expr is implemented by all expression nodes. Type() is populated by sema.
type Expr interface {
	Node
	Type() *ctype.Type
	exprNode()
}

type exprBase struct {
	P token.Pos
	T *ctype.Type
}

func (e *exprBase) Pos() token.Pos { return e.P }

// Type returns the expression's type (populated by sema).
func (e *exprBase) Type() *ctype.Type { return e.T }

// SetType records the expression's type; called by sema.
func (e *exprBase) SetType(t *ctype.Type) { e.T = t }

// SetPosition records the source position; called by the parser.
func (e *exprBase) SetPosition(p token.Pos) { e.P = p }

func (e *exprBase) exprNode() {}

// IntConst is an integer or character constant.
type IntConst struct {
	exprBase
	Value int64
}

// FloatConst is a floating constant.
type FloatConst struct {
	exprBase
	Value float64
}

// StrConst is a string literal.
type StrConst struct {
	exprBase
	Value string
}

// IdentExpr is a use of a named variable, function, or enum constant.
type IdentExpr struct {
	exprBase
	Name string
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	Neg     UnaryOp = iota // -x
	Not                    // !x
	BitNot                 // ~x
	Deref                  // *x
	Addr                   // &x
	PreInc                 // ++x
	PreDec                 // --x
	PostInc                // x++
	PostDec                // x--
)

var unaryNames = [...]string{"-", "!", "~", "*", "&", "++pre", "--pre", "post++", "post--"}

// String returns the operator spelling.
func (op UnaryOp) String() string { return unaryNames[op] }

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	exprBase
	Op UnaryOp
	X  Expr
}

// BinOp enumerates binary operators (pure; assignment is separate).
type BinOp int

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	And // bitwise &
	Or  // bitwise |
	Xor
	Shl
	Shr
	Eq
	Ne
	Lt
	Gt
	Le
	Ge
	LogAnd // &&
	LogOr  // ||
)

var binNames = [...]string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
	"==", "!=", "<", ">", "<=", ">=", "&&", "||"}

// String returns the operator spelling.
func (op BinOp) String() string { return binNames[op] }

// IsComparison reports whether op yields a boolean 0/1 result.
func (op BinOp) IsComparison() bool { return op >= Eq && op <= Ge }

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	exprBase
	Op   BinOp
	L, R Expr
}

// AssignExpr is an assignment, possibly compound (Op != nil means L Op= R).
type AssignExpr struct {
	exprBase
	Op *BinOp // nil for plain =
	L  Expr
	R  Expr
}

// CondExpr is the ?: operator.
type CondExpr struct {
	exprBase
	Cond, Then, Else Expr
}

// CommaExpr is the comma operator (left evaluated for effect).
type CommaExpr struct {
	exprBase
	L, R Expr
}

// CallExpr is a function call.
type CallExpr struct {
	exprBase
	Fun  Expr
	Args []Expr
}

// IndexExpr is a[i].
type IndexExpr struct {
	exprBase
	X, Index Expr
}

// MemberExpr is x.Name (Arrow false) or x->Name (Arrow true).
type MemberExpr struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
}

// CastExpr is (T)x.
type CastExpr struct {
	exprBase
	To *ctype.Type
	X  Expr
}

// SizeofExpr is sizeof(T) or sizeof expr; sema folds it to a constant, but
// the node keeps what was written.
type SizeofExpr struct {
	exprBase
	OfType *ctype.Type // non-nil for sizeof(type)
	X      Expr        // non-nil for sizeof expr
}

// ---------------------------------------------------------------- Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

type stmtBase struct{ P token.Pos }

func (s *stmtBase) Pos() token.Pos { return s.P }
func (s *stmtBase) stmtNode()      {}

// ExprStmt is an expression evaluated for its side effects.
type ExprStmt struct {
	stmtBase
	X Expr
}

// DeclStmt is a local declaration (possibly several declarators).
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// CompoundStmt is { ... }.
type CompoundStmt struct {
	stmtBase
	List []Stmt
}

// IfStmt is if/else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// DoWhileStmt is do { } while ( ).
type DoWhileStmt struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// ForStmt is a C for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	stmtBase
	Init Expr // nil or expression (declarations in for-init are not C89)
	Cond Expr
	Post Expr
	Body Stmt
}

// ReturnStmt returns, with optional value.
type ReturnStmt struct {
	stmtBase
	X Expr // may be nil
}

// BreakStmt breaks the nearest loop or switch.
type BreakStmt struct{ stmtBase }

// ContinueStmt continues the nearest loop.
type ContinueStmt struct{ stmtBase }

// GotoStmt jumps to a label.
type GotoStmt struct {
	stmtBase
	Label string
}

// LabeledStmt attaches a label to a statement.
type LabeledStmt struct {
	stmtBase
	Label string
	Stmt  Stmt
}

// SwitchStmt is a switch.
type SwitchStmt struct {
	stmtBase
	Tag  Expr
	Body Stmt // compound containing Case/Default labels
}

// CaseStmt is "case N:" or "default:" (Expr nil) within a switch body.
type CaseStmt struct {
	stmtBase
	Value Expr // nil for default
	Stmt  Stmt
}

// EmptyStmt is ";".
type EmptyStmt struct{ stmtBase }

// PragmaStmt carries a #pragma directive through to the optimizer
// (e.g. "#pragma safe" asserts the following loop is free of aliasing).
type PragmaStmt struct {
	stmtBase
	Text string
}

// ---------------------------------------------------------------- Declarations

// StorageClass is a declaration's storage class.
type StorageClass int

// Storage classes.
const (
	SCNone StorageClass = iota
	SCStatic
	SCExtern
	SCRegister
	SCAuto
	SCTypedef
)

// VarDecl declares one variable.
type VarDecl struct {
	P       token.Pos
	Name    string
	Type    *ctype.Type
	Storage StorageClass
	Init    Expr // scalar initializer, may be nil
	// InitList holds a brace initializer's elements, flattened in layout
	// order (nested braces contribute their elements in sequence, K&R
	// style). Mutually exclusive with Init.
	InitList []Expr
}

// Pos returns the declaration position.
func (d *VarDecl) Pos() token.Pos { return d.P }

// FuncDecl is a function definition or prototype (Body nil).
type FuncDecl struct {
	P       token.Pos
	Name    string
	Type    *ctype.Type // Kind Func
	Storage StorageClass
	Body    *CompoundStmt // nil for a prototype
}

// Pos returns the declaration position.
func (d *FuncDecl) Pos() token.Pos { return d.P }

// File is one translation unit.
type File struct {
	Funcs   []*FuncDecl
	Globals []*VarDecl
	// Order preserves interleaving for diagnostics: each entry is a
	// *FuncDecl or *VarDecl.
	Order []Node
}

// Helper constructors used by the parser and tests.

// NewIntConst returns an integer constant node of type int.
func NewIntConst(pos token.Pos, v int64) *IntConst {
	return &IntConst{exprBase: exprBase{P: pos, T: ctype.IntType}, Value: v}
}

// NewFloatConst returns a double constant node.
func NewFloatConst(pos token.Pos, v float64) *FloatConst {
	return &FloatConst{exprBase: exprBase{P: pos, T: ctype.DoubleType}, Value: v}
}

// NewIdent returns an identifier node (untyped until sema).
func NewIdent(pos token.Pos, name string) *IdentExpr {
	return &IdentExpr{exprBase: exprBase{P: pos}, Name: name}
}
