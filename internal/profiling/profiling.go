// Package profiling is the shared -cpuprofile/-memprofile/-stats plumbing
// for the CLI commands that run simulations (titanrun, titancc -run).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/titan"
)

// StartCPU begins a CPU profile written to path and returns the function
// that stops and closes it. With an empty path it is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes an allocation profile to path after a final GC so the
// profile reflects live objects, not collection timing. With an empty
// path it is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// FormatStats is the -stats line: host wall time of the simulation, the
// host's simulation throughput (simulated instructions and cycles per
// host second), and the modelled machine's own speed.
func FormatStats(r titan.Result, wall time.Duration) string {
	secs := wall.Seconds()
	instrsPerSec, nsPerCycle := 0.0, 0.0
	if secs > 0 && r.Instrs > 0 {
		instrsPerSec = float64(r.Instrs) / secs
	}
	if r.Cycles > 0 {
		nsPerCycle = float64(wall.Nanoseconds()) / float64(r.Cycles)
	}
	line := fmt.Sprintf("stats: wall=%v host_instrs_per_sec=%.0f ns_per_sim_cycle=%.2f sim_mflops=%.2f",
		wall.Round(time.Microsecond), instrsPerSec, nsPerCycle, r.MFLOPS())
	if r.SyncStalls > 0 {
		line += fmt.Sprintf(" sync_stall_cycles=%d", r.SyncStalls)
	}
	if r.MaskOps > 0 {
		util := 0.0
		if r.MaskLanesTotal > 0 {
			util = float64(r.MaskLanesActive) / float64(r.MaskLanesTotal)
		}
		line += fmt.Sprintf(" mask_ops=%d mask_lane_utilization=%.2f", r.MaskOps, util)
	}
	if procs := FormatProcStats(r); procs != "" {
		line += "\n" + procs
	}
	return line
}

// FormatProcStats renders the per-processor busy/stall/idle breakdown of
// the run's parallel regions, one line per processor that did work, or
// "" when the program never forked.
func FormatProcStats(r titan.Result) string {
	out := ""
	for pid, ps := range r.Procs {
		if ps.Busy == 0 && ps.SyncStall == 0 && ps.JoinIdle == 0 {
			continue
		}
		if out != "" {
			out += "\n"
		}
		out += fmt.Sprintf("  proc %d: busy=%d sync_stall=%d join_idle=%d", pid, ps.Busy, ps.SyncStall, ps.JoinIdle)
	}
	return out
}
