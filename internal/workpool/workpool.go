// Package workpool provides the bounded index-fan worker pool shared by
// the compiler's parallel phases: the mid-end's per-procedure passes
// (via pass.forEachProc) and the front end's deferred-body parse,
// per-function type checking, and per-function lowering. It is a leaf
// package so both ends of the pipeline can use one pool discipline
// without import cycles.
package workpool

import "sync"

// ForEachN applies fn to every index in [0, n), running up to `workers`
// indexes concurrently. Callers write results into an index-addressed
// slice and merge in order, so the aggregate is identical whatever order
// the workers finish in.
//
// fn(i) must touch only state owned by index i (plus read-only shared
// state); workers <= 1 runs serially on the calling goroutine.
func ForEachN(n, workers int, fn func(int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	// Feed indexes through a channel so `workers` goroutines bound the
	// concurrency however many items the caller has.
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
