package workpool

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachNCoversEveryIndex: every index in [0, n) runs exactly once,
// at every pool width including the serial and over-provisioned cases.
func TestForEachNCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64} {
			counts := make([]int32, n)
			ForEachN(n, workers, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Errorf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestForEachNSerialOnCallerGoroutine: workers<=1 must run inline — the
// front end's serial fallback depends on fn seeing the caller's state
// with no goroutine in between.
func TestForEachNSerialOnCallerGoroutine(t *testing.T) {
	order := []int{}
	ForEachN(5, 1, func(i int) { order = append(order, i) }) // no locking: must be inline
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

// TestForEachNBoundsConcurrency: at no point do more than `workers`
// invocations run simultaneously.
func TestForEachNBoundsConcurrency(t *testing.T) {
	const workers = 3
	var mu sync.Mutex
	running, peak := 0, 0
	ForEachN(64, workers, func(int) {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		mu.Unlock()
		mu.Lock()
		running--
		mu.Unlock()
	})
	if peak > workers {
		t.Errorf("observed %d concurrent invocations, cap is %d", peak, workers)
	}
	if peak < 1 {
		t.Errorf("nothing ran")
	}
}
