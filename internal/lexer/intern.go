package lexer

import "strings"

// Interner is a per-compile symbol table that canonicalizes identifier and
// string-literal spellings: every occurrence of the same text yields the
// same backing string. Beyond deduplication, interning copies the (small)
// spellings out of the source buffer, so tokens, AST nodes, and the IL no
// longer pin the whole source text via substring references — the buffer
// becomes collectable as soon as lexing finishes.
//
// An Interner is not safe for concurrent use; the front end interns during
// the single serial lexing pass, before any parallel phase starts. A nil
// *Interner is valid and interns nothing.
type Interner struct {
	m map[string]string
}

// NewInterner returns an empty per-compile interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string, 128)}
}

// Intern returns the canonical instance of s.
func (in *Interner) Intern(s string) string {
	if in == nil {
		return s
	}
	if c, ok := in.m[s]; ok {
		return c
	}
	c := strings.Clone(s)
	in.m[c] = c
	return c
}
