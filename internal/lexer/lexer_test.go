package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "int x while whiley _a a1")
	want := []token.Kind{token.KwInt, token.Ident, token.KwWhile, token.Ident,
		token.Ident, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestAllOperators(t *testing.T) {
	src := "( ) { } [ ] ; , : ? ... = += -= *= /= %= &= |= ^= <<= >>= + - * / % ++ -- == != < > <= >= && || ! & | ^ ~ << >> -> ."
	want := []token.Kind{
		token.LParen, token.RParen, token.LBrace, token.RBrace,
		token.LBracket, token.RBracket, token.Semi, token.Comma, token.Colon,
		token.Question, token.Ellipsis,
		token.Assign, token.PlusAssign, token.MinusAssign, token.StarAssign,
		token.SlashAssign, token.PercentAssign, token.AmpAssign,
		token.PipeAssign, token.CaretAssign, token.ShlAssign, token.ShrAssign,
		token.Plus, token.Minus, token.Star, token.Slash, token.Percent,
		token.Inc, token.Dec,
		token.Eq, token.Ne, token.Lt, token.Gt, token.Le, token.Ge,
		token.AndAnd, token.OrOr, token.Not,
		token.Amp, token.Pipe, token.Caret, token.Tilde, token.Shl, token.Shr,
		token.Arrow, token.Dot, token.EOF,
	}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestMaximalMunch(t *testing.T) {
	// a+++b lexes as a ++ + b per maximal munch.
	got := kinds(t, "a+++b")
	want := []token.Kind{token.Ident, token.Inc, token.Plus, token.Ident, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestIntConstants(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"0", 0}, {"42", 42}, {"0x1f", 31}, {"010", 8}, {"123456789", 123456789},
		{"42L", 42}, {"42u", 42}, {"0xFFul", 255},
	}
	for _, c := range cases {
		toks, err := Tokenize(c.src)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", c.src, err)
		}
		if toks[0].Kind != token.IntLit {
			t.Fatalf("%q: kind %v", c.src, toks[0].Kind)
		}
		if toks[0].IntVal != c.want {
			t.Errorf("%q: got %d want %d", c.src, toks[0].IntVal, c.want)
		}
	}
}

func TestFloatConstants(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1.0", 1.0}, {"0.5", 0.5}, {".25", 0.25}, {"1e3", 1000},
		{"2.5e-2", 0.025}, {"1.0f", 1.0}, {"3f", 3.0},
	}
	for _, c := range cases {
		toks, err := Tokenize(c.src)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", c.src, err)
		}
		if toks[0].Kind != token.FloatLit {
			t.Fatalf("%q: kind %v not FloatLit", c.src, toks[0].Kind)
		}
		if toks[0].FloatVal != c.want {
			t.Errorf("%q: got %g want %g", c.src, toks[0].FloatVal, c.want)
		}
	}
}

func TestDotVersusFloat(t *testing.T) {
	// "s.f" must lex Dot, while ".5" must lex a float.
	got := kinds(t, "s.f")
	want := []token.Kind{token.Ident, token.Dot, token.Ident, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestCharConstants(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"'a'", 'a'}, {"'\\n'", '\n'}, {"'\\0'", 0}, {"'\\x41'", 'A'}, {"'\\''", '\''},
	}
	for _, c := range cases {
		toks, err := Tokenize(c.src)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", c.src, err)
		}
		if toks[0].Kind != token.CharLit || toks[0].IntVal != c.want {
			t.Errorf("%q: got kind %v val %d, want CharLit %d", c.src, toks[0].Kind, toks[0].IntVal, c.want)
		}
	}
}

func TestStrings(t *testing.T) {
	toks, err := Tokenize(`"hello\tworld\n"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].StrVal != "hello\tworld\n" {
		t.Errorf("got %q", toks[0].StrVal)
	}
}

func TestComments(t *testing.T) {
	src := "a /* multi\nline */ b // rest of line\nc"
	got := kinds(t, src)
	want := []token.Kind{token.Ident, token.Ident, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestPragma(t *testing.T) {
	toks, err := Tokenize("#pragma safe\nint x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.Pragma || toks[0].Text != "safe" {
		t.Fatalf("got %v %q", toks[0].Kind, toks[0].Text)
	}
}

func TestRejectsOtherDirectives(t *testing.T) {
	if _, err := Tokenize("#include <stdio.h>\n"); err == nil {
		t.Fatal("expected error for #include")
	}
}

func TestErrors(t *testing.T) {
	bad := []string{"/* unterminated", "'", "''", "\"unterminated", "\"new\nline\"", "@"}
	for _, src := range bad {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

// Property: any sequence of identifiers round-trips through the lexer.
func TestQuickIdentRoundTrip(t *testing.T) {
	f := func(words []string) bool {
		var clean []string
		for _, w := range words {
			// Sanitize into a valid identifier.
			var sb strings.Builder
			sb.WriteByte('v')
			for _, r := range w {
				if r < 128 && (r == '_' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')) {
					sb.WriteRune(r)
				}
			}
			clean = append(clean, sb.String())
		}
		toks, err := Tokenize(strings.Join(clean, " "))
		if err != nil {
			return false
		}
		if len(toks) != len(clean)+1 {
			return false
		}
		for i, w := range clean {
			if toks[i].Text != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: integer constants in [0, 1<<31) round-trip through the lexer.
func TestQuickIntRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		toks, err := Tokenize(strings.TrimSpace((" ") + itoa(int64(n))))
		return err == nil && toks[0].Kind == token.IntLit && toks[0].IntVal == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
