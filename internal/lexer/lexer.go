// Package lexer converts C source text into a stream of tokens.
//
// The lexer handles the full C operator set (including the compound
// assignment operators, ++/--, -> and the ?: pieces), character/string
// escapes, decimal/octal/hex integer constants, floating constants with
// exponents and suffixes, and both comment styles. #pragma lines are
// returned as single Pragma tokens; all other preprocessor lines are
// rejected (the compiler consumes post-preprocessed source, as PCC did).
package lexer

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans one source buffer.
type Lexer struct {
	src    string
	off    int
	line   int
	col    int
	intern *Interner
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// NewInterning returns a lexer over src that canonicalizes identifier and
// string-literal spellings through in (nil interns nothing).
func NewInterning(src string, in *Interner) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, intern: in}
}

// Tokenize scans the entire input, returning all tokens up to and including
// the EOF token.
func Tokenize(src string) ([]token.Token, error) {
	return TokenizeInterned(src, nil)
}

// TokenizeInterned is Tokenize with identifier/string-literal interning
// through the given per-compile interner (nil interns nothing).
func TokenizeInterned(src string, in *Interner) ([]token.Token, error) {
	lx := NewInterning(src, in)
	var toks []token.Token
	for {
		t, err := lx.Next()
		if err != nil {
			return toks, err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) errorf(pos token.Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// skipSpace consumes whitespace and comments. It reports whether a newline
// was crossed (needed for preprocessor-line detection).
func (l *Lexer) skipSpace() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v':
			l.advance()
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf(start, "unterminated comment")
			}
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next returns the next token.
func (l *Lexer) Next() (token.Token, error) {
	if err := l.skipSpace(); err != nil {
		return token.Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case c == '#':
		return l.lexDirective(pos)
	case isIdentStart(c):
		return l.lexIdent(pos), nil
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.lexNumber(pos)
	case c == '\'':
		return l.lexChar(pos)
	case c == '"':
		return l.lexString(pos)
	default:
		return l.lexOperator(pos)
	}
}

func (l *Lexer) lexDirective(pos token.Pos) (token.Token, error) {
	start := l.off
	for l.off < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
	line := strings.TrimSpace(l.src[start:l.off])
	body, ok := strings.CutPrefix(line, "#")
	if !ok {
		return token.Token{}, l.errorf(pos, "malformed directive %q", line)
	}
	body = strings.TrimSpace(body)
	if rest, ok := strings.CutPrefix(body, "pragma"); ok {
		return token.Token{Kind: token.Pragma, Text: strings.TrimSpace(rest), Pos: pos}, nil
	}
	return token.Token{}, l.errorf(pos, "unsupported preprocessor directive %q (input must be preprocessed)", line)
}

func (l *Lexer) lexIdent(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && isIdentCont(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.off]
	if kw, ok := token.Keywords[text]; ok {
		return token.Token{Kind: kw, Text: text, Pos: pos}
	}
	return token.Token{Kind: token.Ident, Text: l.intern.Intern(text), Pos: pos}
}

func (l *Lexer) lexNumber(pos token.Pos) (token.Token, error) {
	start := l.off
	isFloat := false
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			next := l.peek2()
			if isDigit(next) || next == '+' || next == '-' {
				isFloat = true
				l.advance()
				if l.peek() == '+' || l.peek() == '-' {
					l.advance()
				}
				for l.off < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			}
		}
	}
	text := l.src[start:l.off]
	// Suffixes: f/F force float; l/L and u/U are accepted and ignored
	// (the IL models a single integer and a single float width).
	suffix := ""
	for l.off < len(l.src) {
		switch l.peek() {
		case 'f', 'F':
			isFloat = true
			suffix += string(l.advance())
		case 'l', 'L', 'u', 'U':
			suffix += string(l.advance())
		default:
			goto done
		}
	}
done:
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token.Token{}, l.errorf(pos, "bad float constant %q", text+suffix)
		}
		return token.Token{Kind: token.FloatLit, Text: text + suffix, Pos: pos, FloatVal: v}, nil
	}
	v, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		// Retry as unsigned for large constants, wrapping into int64.
		u, uerr := strconv.ParseUint(text, 0, 64)
		if uerr != nil {
			return token.Token{}, l.errorf(pos, "bad integer constant %q", text+suffix)
		}
		v = int64(u)
	}
	return token.Token{Kind: token.IntLit, Text: text + suffix, Pos: pos, IntVal: v}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) lexEscape(pos token.Pos) (byte, error) {
	if l.off >= len(l.src) {
		return 0, l.errorf(pos, "unterminated escape")
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	case 'v':
		return '\v', nil
	case 'a':
		return 7, nil
	case '0', '1', '2', '3', '4', '5', '6', '7':
		v := int(c - '0')
		for i := 0; i < 2 && l.off < len(l.src) && l.peek() >= '0' && l.peek() <= '7'; i++ {
			v = v*8 + int(l.advance()-'0')
		}
		return byte(v), nil
	case 'x':
		v := 0
		n := 0
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			d := l.advance()
			v = v*16 + hexVal(d)
			n++
		}
		if n == 0 {
			return 0, l.errorf(pos, "\\x with no hex digits")
		}
		return byte(v), nil
	case '\\', '\'', '"', '?':
		return c, nil
	default:
		return 0, l.errorf(pos, "unknown escape \\%c", c)
	}
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

func (l *Lexer) lexChar(pos token.Pos) (token.Token, error) {
	l.advance() // '
	if l.off >= len(l.src) {
		return token.Token{}, l.errorf(pos, "unterminated character constant")
	}
	var v byte
	c := l.advance()
	if c == '\\' {
		e, err := l.lexEscape(pos)
		if err != nil {
			return token.Token{}, err
		}
		v = e
	} else if c == '\'' {
		return token.Token{}, l.errorf(pos, "empty character constant")
	} else {
		v = c
	}
	if l.off >= len(l.src) || l.advance() != '\'' {
		return token.Token{}, l.errorf(pos, "unterminated character constant")
	}
	return token.Token{Kind: token.CharLit, Text: string(v), Pos: pos, IntVal: int64(v)}, nil
}

func (l *Lexer) lexString(pos token.Pos) (token.Token, error) {
	l.advance() // "
	var sb strings.Builder
	for {
		if l.off >= len(l.src) {
			return token.Token{}, l.errorf(pos, "unterminated string constant")
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\n' {
			return token.Token{}, l.errorf(pos, "newline in string constant")
		}
		if c == '\\' {
			e, err := l.lexEscape(pos)
			if err != nil {
				return token.Token{}, err
			}
			sb.WriteByte(e)
			continue
		}
		sb.WriteByte(c)
	}
	s := l.intern.Intern(sb.String())
	return token.Token{Kind: token.StringLit, Text: s, Pos: pos, StrVal: s}, nil
}

// twoCharOps maps the first byte of a multi-char operator to candidate
// continuations, longest first.
func (l *Lexer) lexOperator(pos token.Pos) (token.Token, error) {
	mk := func(k token.Kind, n int) (token.Token, error) {
		text := l.src[l.off : l.off+n]
		for i := 0; i < n; i++ {
			l.advance()
		}
		return token.Token{Kind: k, Text: text, Pos: pos}, nil
	}
	rest := l.src[l.off:]
	switch {
	case strings.HasPrefix(rest, "..."):
		return mk(token.Ellipsis, 3)
	case strings.HasPrefix(rest, "<<="):
		return mk(token.ShlAssign, 3)
	case strings.HasPrefix(rest, ">>="):
		return mk(token.ShrAssign, 3)
	case strings.HasPrefix(rest, "<<"):
		return mk(token.Shl, 2)
	case strings.HasPrefix(rest, ">>"):
		return mk(token.Shr, 2)
	case strings.HasPrefix(rest, "++"):
		return mk(token.Inc, 2)
	case strings.HasPrefix(rest, "--"):
		return mk(token.Dec, 2)
	case strings.HasPrefix(rest, "->"):
		return mk(token.Arrow, 2)
	case strings.HasPrefix(rest, "=="):
		return mk(token.Eq, 2)
	case strings.HasPrefix(rest, "!="):
		return mk(token.Ne, 2)
	case strings.HasPrefix(rest, "<="):
		return mk(token.Le, 2)
	case strings.HasPrefix(rest, ">="):
		return mk(token.Ge, 2)
	case strings.HasPrefix(rest, "&&"):
		return mk(token.AndAnd, 2)
	case strings.HasPrefix(rest, "||"):
		return mk(token.OrOr, 2)
	case strings.HasPrefix(rest, "+="):
		return mk(token.PlusAssign, 2)
	case strings.HasPrefix(rest, "-="):
		return mk(token.MinusAssign, 2)
	case strings.HasPrefix(rest, "*="):
		return mk(token.StarAssign, 2)
	case strings.HasPrefix(rest, "/="):
		return mk(token.SlashAssign, 2)
	case strings.HasPrefix(rest, "%="):
		return mk(token.PercentAssign, 2)
	case strings.HasPrefix(rest, "&="):
		return mk(token.AmpAssign, 2)
	case strings.HasPrefix(rest, "|="):
		return mk(token.PipeAssign, 2)
	case strings.HasPrefix(rest, "^="):
		return mk(token.CaretAssign, 2)
	}
	if k, ok := singleOps[l.peek()]; ok {
		return mk(k, 1)
	}
	return token.Token{}, l.errorf(pos, "unexpected character %q", string(l.peek()))
}

// singleOps maps single-character operators to their kinds. Package-level
// so lexOperator (called once per operator token) allocates nothing.
var singleOps = map[byte]token.Kind{
	'(': token.LParen, ')': token.RParen, '{': token.LBrace, '}': token.RBrace,
	'[': token.LBracket, ']': token.RBracket, ';': token.Semi, ',': token.Comma,
	':': token.Colon, '?': token.Question, '=': token.Assign,
	'+': token.Plus, '-': token.Minus, '*': token.Star, '/': token.Slash,
	'%': token.Percent, '<': token.Lt, '>': token.Gt, '!': token.Not,
	'&': token.Amp, '|': token.Pipe, '^': token.Caret, '~': token.Tilde,
	'.': token.Dot,
}
