package repro

// End-to-end tests for if-conversion and masked vector execution: the
// conditional workloads (clip, threshold-accumulate, sparse saxpy) that
// the vectorizer used to reject must now compile to masked vector code
// that is bit-identical to the scalar compile on both engines at every
// processor count, and the compile must say so in its remarks and
// report.

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/pass"
	"repro/internal/titan"
)

// maskedWorkloads is the conditional-kernel suite: every loop body is
// guarded by a data-dependent if, which pre-mask vectorization rejected
// with vect-scalar-flow.
func maskedWorkloads() []bench.Workload {
	return []bench.Workload{
		bench.Clip(512),
		bench.ThresholdAccum(512),
		bench.SparseSaxpy(512),
	}
}

// TestMaskedWorkloadsVectorize: the full pipeline if-converts and masks
// at least one statement per conditional workload and reports the
// vect-masked verdict.
func TestMaskedWorkloadsVectorize(t *testing.T) {
	for _, w := range maskedWorkloads() {
		t.Run(w.Name, func(t *testing.T) {
			ctx := pass.NewContext()
			res, err := driver.CompileWith(w.Src, driver.FullOptions(), ctx)
			if err != nil {
				t.Fatal(err)
			}
			if res.VectorStats.MaskedStmts < 1 {
				t.Errorf("no masked vector statements: %+v", res.VectorStats)
			}
			if res.Report.IfConv.IfsConverted < 1 {
				t.Errorf("no conditionals if-converted: %+v", res.Report.IfConv)
			}
			var sawConverted, sawMasked bool
			for _, d := range ctx.Diags.All() {
				switch d.Code {
				case diag.VectIfConverted:
					sawConverted = true
				case diag.VectMasked:
					sawMasked = true
					if !strings.Contains(d.String(), "masked_stmts") {
						t.Errorf("vect-masked remark lacks masked_stmts arg: %s", d)
					}
				}
			}
			if !sawConverted || !sawMasked {
				t.Errorf("missing remarks: vect-if-converted=%v vect-masked=%v", sawConverted, sawMasked)
			}
		})
	}
}

// TestMaskedBitIdenticalToScalar: for each conditional workload, the
// masked compile's observable behavior (exit code and output) matches
// the scalar -O1 compile, and the fast engine matches the reference
// interpreter at 1, 2, and 4 processors — the acceptance bar for
// predicated execution.
func TestMaskedBitIdenticalToScalar(t *testing.T) {
	for _, w := range maskedWorkloads() {
		t.Run(w.Name, func(t *testing.T) {
			scalarRes, err := driver.Compile(w.Src, driver.Options{OptLevel: 1})
			if err != nil {
				t.Fatal(err)
			}
			maskedRes, err := driver.Compile(w.Src, driver.FullOptions())
			if err != nil {
				t.Fatal(err)
			}
			scalar, err := titan.NewMachine(scalarRes.Machine, 1).Run("main")
			if err != nil {
				t.Fatal(err)
			}
			for _, procs := range []int{1, 2, 4} {
				fast, err := titan.NewMachine(maskedRes.Machine, procs).Run("main")
				if err != nil {
					t.Fatalf("p=%d: %v", procs, err)
				}
				ref, err := titan.NewMachine(maskedRes.Machine, procs).RunReference("main")
				if err != nil {
					t.Fatalf("p=%d reference: %v", procs, err)
				}
				if fast != ref {
					t.Errorf("p=%d: fast engine %+v != reference %+v", procs, fast, ref)
				}
				if fast.ExitCode != scalar.ExitCode || fast.Output != scalar.Output {
					t.Errorf("p=%d: masked exit=%d output=%q, scalar exit=%d output=%q",
						procs, fast.ExitCode, fast.Output, scalar.ExitCode, scalar.Output)
				}
				if fast.MaskOps < 1 {
					t.Errorf("p=%d: run retired no masked ops — masking not actually exercised", procs)
				}
			}
		})
	}
}
