package repro

// Differential tests for the arena-backed IL and the parallel front end:
// compiling with per-proc arenas and the deferred-body parallel front end
// (the default) must be observably identical to the serial-heap baseline —
// the classic one-goroutine front end with every procedure's arena
// stripped before optimization, so all rewrites allocate from the GC heap.
// "Identical" is checked at five levels — the optimized IL text, the
// generated assembly, the per-phase stats, the diagnostic/remark stream,
// and the simulated cycle counts — over every E-series workload under both
// the full and the scalar-only configuration. A concurrent-compile hammer
// (run under -race in CI) drives many arena+parallel compiles of the same
// sources at once to surface any shared-state leakage between compiles.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/il"
	"repro/internal/pass"
	"repro/internal/titan"
)

// arenaArtifacts is the full observable surface of one compile.
type arenaArtifacts struct {
	ilDump   string
	asm      string
	remarks  string
	vector   string
	par      string
	strength string
	cycles   int64
	flops    int64
	exit     int64
}

// compileArtifacts compiles src and extracts every comparable artifact.
// workers selects the front-end/pass pool width; stripArenas moves the
// whole optimization pipeline onto the GC heap by detaching each proc's
// arena right after lowering (the pre-arena baseline).
func compileArtifacts(t *testing.T, src string, opts driver.Options, workers int, stripArenas bool) arenaArtifacts {
	t.Helper()
	ctx := pass.NewContext()
	ctx.Workers = workers
	ctx.Analysis = analysis.NewCache()
	if stripArenas {
		ctx.Snapshot = func(name string, prog *il.Program) {
			if name != pass.SnapshotInput {
				return
			}
			for _, p := range prog.Procs {
				p.Arena().Release()
				p.SetArena(nil)
			}
		}
	}
	res, err := driver.CompileWith(src, opts, ctx)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := titan.NewMachine(res.Machine, 4)
	r, err := m.Run("main")
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	var remarks strings.Builder
	for _, d := range res.Report.Diags {
		remarks.WriteString(d.String())
		remarks.WriteByte('\n')
	}
	return arenaArtifacts{
		ilDump:   driver.DumpIL(res),
		asm:      driver.Disassemble(res),
		remarks:  remarks.String(),
		vector:   fmt.Sprintf("%+v", res.VectorStats),
		par:      fmt.Sprintf("%+v", res.ParallelStats),
		strength: fmt.Sprintf("%+v", res.StrengthStats),
		cycles:   r.Cycles,
		flops:    r.FlopCount,
		exit:     r.ExitCode,
	}
}

func diffArtifacts(t *testing.T, got, want arenaArtifacts) {
	t.Helper()
	if got.ilDump != want.ilDump {
		t.Errorf("IL differs:\n--- arena+parallel ---\n%s\n--- serial heap ---\n%s", got.ilDump, want.ilDump)
	}
	if got.asm != want.asm {
		t.Errorf("assembly differs:\n--- arena+parallel ---\n%s\n--- serial heap ---\n%s", got.asm, want.asm)
	}
	if got.remarks != want.remarks {
		t.Errorf("remark stream differs:\n--- arena+parallel ---\n%s\n--- serial heap ---\n%s", got.remarks, want.remarks)
	}
	if got.vector != want.vector || got.par != want.par || got.strength != want.strength {
		t.Errorf("phase stats differ: arena+parallel (%s | %s | %s), serial heap (%s | %s | %s)",
			got.vector, got.par, got.strength, want.vector, want.par, want.strength)
	}
	if got.cycles != want.cycles || got.flops != want.flops || got.exit != want.exit {
		t.Errorf("simulation differs: arena+parallel cycles=%d flops=%d exit=%d, serial heap cycles=%d flops=%d exit=%d",
			got.cycles, got.flops, got.exit, want.cycles, want.flops, want.exit)
	}
}

// TestArenaParallelDifferentialIdentical: arenas + parallel front end
// (workers=8) versus the serial-heap baseline (workers=1, arenas
// stripped) over every E-series workload, full and scalar-only.
func TestArenaParallelDifferentialIdentical(t *testing.T) {
	configs := []struct {
		name string
		opts driver.Options
	}{
		{"full", driver.FullOptions()},
		{"scalar", driver.ScalarOptions()},
	}
	for _, w := range evalWorkloads() {
		for _, cfg := range configs {
			t.Run(w.Name+"/"+cfg.name, func(t *testing.T) {
				got := compileArtifacts(t, w.Src, cfg.opts, 8, false)
				want := compileArtifacts(t, w.Src, cfg.opts, 1, true)
				diffArtifacts(t, got, want)
			})
		}
	}
}

// TestArenaParallelManyProcs exercises the deferred-body path on a unit
// with many procedures — enough that the front-end pool actually queues —
// including statics and string literals whose .strN numbering must merge
// back in declaration order. Compared at the IL level (this corpus trips
// a pre-existing codegen limit on parallelized call lists in main, which
// is orthogonal to the front end).
func TestArenaParallelManyProcs(t *testing.T) {
	src := manyProcProgram(24)
	compileIL := func(workers int, strip bool) string {
		ctx := pass.NewContext()
		ctx.Workers = workers
		if strip {
			ctx.Snapshot = func(name string, prog *il.Program) {
				if name != pass.SnapshotInput {
					return
				}
				for _, p := range prog.Procs {
					p.Arena().Release()
					p.SetArena(nil)
				}
			}
		}
		res, err := driver.CompileILWith(src, driver.FullOptions(), ctx)
		if err != nil {
			t.Fatalf("compile (workers=%d strip=%v): %v", workers, strip, err)
		}
		return driver.DumpIL(res)
	}
	got := compileIL(8, false)
	want := compileIL(1, true)
	if got != want {
		t.Errorf("IL differs:\n--- arena+parallel ---\n%s\n--- serial heap ---\n%s", got, want)
	}
	// The declaration-order merge must have numbered one string per kernel.
	if !strings.Contains(got, ".str24") || strings.Contains(got, ".str25") {
		t.Errorf("expected exactly 24 interned string globals (.str1...str24)")
	}
}

// manyProcProgram builds n loop procedures plus a main; each procedure
// carries a function static and a distinct string literal so the
// declaration-order global merge is observable in the artifacts.
func manyProcProgram(n int) string {
	var sb strings.Builder
	sb.WriteString("float a[256], b[256], c[256];\nchar *tag;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `
void k%d(int n)
{
	static int calls;
	int i;
	calls = calls + 1;
	tag = "kernel-%d";
	for (i = 0; i < n; i++)
		a[i] = b[i] * %d.0f + c[i];
	while (n) {
		c[n-1] = a[n-1] + b[n-1];
		n--;
	}
}
`, i, i, i+1)
	}
	sb.WriteString("\nint main(void)\n{\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "\tk%d(64);\n", i)
	}
	sb.WriteString("\treturn 0;\n}\n")
	return sb.String()
}

// TestArenaConcurrentCompileHammer drives many full compiles of the same
// E-series sources at once (each on the arena + parallel configuration)
// and verifies every one matches the precomputed serial-heap artifacts.
// Under -race this doubles as the shared-state check for the interner,
// the deferred-body parser, the per-function checker/lowerer merges, and
// the arena gauge.
func TestArenaConcurrentCompileHammer(t *testing.T) {
	workloads := evalWorkloads()
	want := make([]arenaArtifacts, len(workloads))
	for i, w := range workloads {
		want[i] = compileArtifacts(t, w.Src, driver.FullOptions(), 1, true)
	}
	const rounds = 4
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for i := range workloads {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got := compileArtifacts(t, workloads[i].Src, driver.FullOptions(), 8, false)
				diffArtifacts(t, got, want[i])
			}(i)
		}
	}
	wg.Wait()
}

// TestArenaReleaseDropsGauge: releasing a compile's IL must return its
// arena bytes to the process-wide gauge (the service exports this gauge
// as arena_bytes_live and releases after artifact encode).
func TestArenaReleaseDropsGauge(t *testing.T) {
	before := il.ArenaBytesLive()
	res, err := driver.Compile(bench.Backsolve(256).Src, driver.FullOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	during := il.ArenaBytesLive()
	if during <= before {
		t.Fatalf("gauge did not rise during compile: before=%d during=%d", before, during)
	}
	res.IL.Release()
	after := il.ArenaBytesLive()
	if after != before {
		t.Fatalf("gauge did not return to baseline after Release: before=%d after=%d", before, after)
	}
	res.IL.Release() // idempotent
	if got := il.ArenaBytesLive(); got != after {
		t.Fatalf("second Release moved the gauge: %d -> %d", after, got)
	}
}

// TestParallelFrontEndErrorGolden: a unit whose third, fifth, and sixth
// procedures are each broken (a parse error, a sema error, and a lower
// error respectively) must report exactly the serial front end's first
// diagnostic — same position, same text — no matter how wide the pool is,
// and the structured diagnostic stream must carry it identically.
func TestParallelFrontEndErrorGolden(t *testing.T) {
	src := `int a[64];

void ok1(int n) { int i; for (i = 0; i < n; i++) a[i] = i; }

void bad_parse(int n) { int i; i = ; }

void ok2(int n) { a[0] = n; }

void bad_sema(int n) { undeclared_var = n; }

void bad_lower(int n) { a[1] = n; }

int main(void) { return 0; }
`
	const wantErr = "5:36: expected expression, found ;"
	var wantDiag string
	for round := 0; round < 8; round++ {
		for _, workers := range []int{1, 8} {
			ctx := pass.NewContext()
			ctx.Workers = workers
			ctx.Diags = &diag.Reporter{}
			_, err := driver.CompileWith(src, driver.FullOptions(), ctx)
			if err == nil {
				t.Fatalf("workers=%d: compile unexpectedly succeeded", workers)
			}
			if err.Error() != wantErr {
				t.Fatalf("workers=%d round=%d: error = %q, want %q", workers, round, err.Error(), wantErr)
			}
			var stream strings.Builder
			for _, d := range ctx.Diags.All() {
				stream.WriteString(d.String())
				stream.WriteByte('\n')
			}
			if wantDiag == "" {
				wantDiag = stream.String()
				if !strings.Contains(wantDiag, "5:36") {
					t.Fatalf("diagnostic stream lost the position:\n%s", wantDiag)
				}
			} else if stream.String() != wantDiag {
				t.Fatalf("workers=%d round=%d: diagnostic stream changed:\n--- got ---\n%s\n--- want ---\n%s",
					workers, round, stream.String(), wantDiag)
			}
		}
	}
}
