// Library catalogs (§7): "math libraries can be 'compiled' into databases
// and used as a base for inlining, much as include directories are used as
// a source for header files." This example compiles a small BLAS-like
// library into a catalog, then builds an application against only the
// prototypes — the bodies come from the catalog at inline time, and the
// saxpy loop vectorizes inside the caller.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/driver"
	"repro/internal/inline"
	"repro/internal/titan"
)

const library = `
/* blaslite: level-1 kernels in plain C. */

void saxpy(float *y, float *x, float alpha, int n)
{
	int i;
	for (i = 0; i < n; i++)
		y[i] = y[i] + alpha * x[i];
}

float sdot(float *x, float *y, int n)
{
	int i;
	float s;
	s = 0;
	for (i = 0; i < n; i++)
		s = s + x[i] * y[i];
	return s;
}

void sscale(float *x, float alpha, int n)
{
	int i;
	for (i = 0; i < n; i++)
		x[i] = alpha * x[i];
}
`

const application = `
int printf(char *fmt, ...);

void saxpy(float *y, float *x, float alpha, int n);
float sdot(float *x, float *y, int n);
void sscale(float *x, float alpha, int n);

float u[256], v[256];

int main(void)
{
	int i;
	float d;
	for (i = 0; i < 256; i++) {
		u[i] = 1.0f;
		v[i] = i;
	}
	saxpy(u, v, 0.5f, 256);  /* u = 1 + 0.5*i     */
	sscale(u, 2.0f, 256);    /* u = 2 + i         */
	d = sdot(u, v, 256);     /* sum i*(2+i)       */
	printf("dot = %g\n", d);
	return 0;
}
`

func main() {
	// "Compile" the library into a catalog (what titancc -emit-catalog
	// does).
	var buf bytes.Buffer
	if err := driver.WriteCatalogFromSource(&buf, library); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog size: %d bytes\n", buf.Len())

	cat, err := inline.ReadCatalog(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog procedures: %d\n", len(cat.Procs))

	opts := driver.FullOptions()
	opts.Catalogs = []*inline.Catalog{cat}
	res, err := driver.Compile(application, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inlined calls: %d, vector statements: %d\n",
		res.InlinedCalls, res.VectorStats.VectorStmts)

	m := titan.NewMachine(res.Machine, 2)
	r, err := m.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.Output)

	// Contrast with the no-catalog build: the calls stay opaque and
	// nothing vectorizes.
	plain, err := driver.Compile(application+library, driver.Options{OptLevel: 1})
	if err != nil {
		log.Fatal(err)
	}
	mp := titan.NewMachine(plain.Machine, 1)
	rp, err := mp.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog-inlined: %d cycles; plain calls: %d cycles (%.1fx)\n",
		r.Cycles, rp.Cycles, float64(rp.Cycles)/float64(r.Cycles))
}
