// A Doré-style graphics workload (§10): 4x4 transform matrices embedded in
// structures, applied to a strip of vertices. The paper calls out two
// lessons this exercises: arrays embedded within structures must be
// analyzable (their §10 post-mortem), and constant 4-element loops must
// vectorize without strip-loop overhead (§5.2).
package main

import (
	"fmt"
	"log"

	"repro/internal/driver"
)

const program = `
int printf(char *fmt, ...);

struct xform {
	float m[4][4];
	int flags;
};

struct vertex {
	float p[4];
};

struct xform world;
struct vertex verts[512];

void transform(struct xform *t, struct vertex *v, int n)
{
	int k, i, j;
	float out[4];
	for (k = 0; k < n; k++) {
		for (i = 0; i < 4; i++) {
			float s;
			s = 0;
			for (j = 0; j < 4; j++)
				s = s + t->m[i][j] * v[k].p[j];
			out[i] = s;
		}
		for (i = 0; i < 4; i++)
			v[k].p[i] = out[i];
	}
}

int main(void)
{
	int i, k;
	/* scale-by-2 transform */
	for (i = 0; i < 4; i++) {
		int j;
		for (j = 0; j < 4; j++)
			world.m[i][j] = 0;
		world.m[i][i] = 2.0f;
	}
	for (k = 0; k < 512; k++)
		for (i = 0; i < 4; i++)
			verts[k].p[i] = k + i;

	transform(&world, verts, 512);

	printf("v[0] = (%g %g %g %g)\n",
		verts[0].p[0], verts[0].p[1], verts[0].p[2], verts[0].p[3]);
	printf("v[511] = (%g %g %g %g)\n",
		verts[511].p[0], verts[511].p[1], verts[511].p[2], verts[511].p[3]);
	return 0;
}
`

// soaProgram is the same transform with the vertices transposed into a
// structure of arrays, the layout a vectorizing compiler wants: each
// component update becomes a long vector over the vertex strip instead of
// a 4-element vector per vertex.
const soaProgram = `
int printf(char *fmt, ...);

float m00, m11, m22, m33; /* scale transform diagonal */
float px[512], py[512], pz[512], pw[512];

int main(void)
{
	int k;
	m00 = 2.0f; m11 = 2.0f; m22 = 2.0f; m33 = 2.0f;
	for (k = 0; k < 512; k++) {
		px[k] = k;
		py[k] = k + 1;
		pz[k] = k + 2;
		pw[k] = k + 3;
	}
	for (k = 0; k < 512; k++) px[k] = m00 * px[k];
	for (k = 0; k < 512; k++) py[k] = m11 * py[k];
	for (k = 0; k < 512; k++) pz[k] = m22 * pz[k];
	for (k = 0; k < 512; k++) pw[k] = m33 * pw[k];
	printf("v[511] = (%g %g %g %g)\n", px[511], py[511], pz[511], pw[511]);
	return 0;
}
`

func run(src string, opts driver.Options, procs int) (cycles int64, out string) {
	r, err := driver.Run(src, opts, procs)
	if err != nil {
		log.Fatal(err)
	}
	return r.Cycles, r.Output
}

func main() {
	res, err := driver.Compile(program, driver.FullOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AoS transform: %d vector statements (4-wide rows, no strip loops)\n",
		res.VectorStats.VectorStmts)

	aosFull, out := run(program, driver.FullOptions(), 1)
	aosScalar, _ := run(program, driver.ScalarOptions(), 1)
	fmt.Print(out)
	fmt.Printf("AoS: scalar %d cycles, optimized %d cycles (%.2fx)\n",
		aosScalar, aosFull, float64(aosScalar)/float64(aosFull))
	fmt.Println("  (4-element vectors barely pay for their startup — the §10 lesson:")
	fmt.Println("   arrays in structs must be *analyzable*, but short rows win little)")

	soaFull, out2 := run(soaProgram, driver.FullOptions(), 2)
	soaScalar, _ := run(soaProgram, driver.ScalarOptions(), 1)
	fmt.Print(out2)
	fmt.Printf("SoA: scalar %d cycles, optimized(P=2) %d cycles (%.2fx)\n",
		soaScalar, soaFull, float64(soaScalar)/float64(soaFull))
	fmt.Println("  (the same math over transposed data vectorizes across the vertex strip)")
}
