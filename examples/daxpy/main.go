// The paper's §9 walkthrough: a C daxpy cannot be vectorized directly
// because C imposes no restrictions on argument aliasing — but inlining it
// into the caller exposes the distinct arrays, and the loop then compiles
// to `do parallel vi = 0, 99, 32 { vector ... }`, running many times
// faster on a two-processor Titan. This example reproduces the whole
// chain and prints the intermediate form at each step.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/driver"
)

func measure(w bench.Workload, name string, opts driver.Options, procs int) bench.Measurement {
	m, err := bench.Run(w, bench.Config{Name: name, Opts: opts, Processors: procs})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return m
}

func main() {
	// The §9 program, with the daxpy call marked so the harness measures
	// the kernel differentially (total minus a run without the call).
	w := bench.Daxpy(100)

	// Show the final IL of main under the full pipeline: the paper's
	// "do parallel vi = 0, 99, 32" shape.
	res, err := driver.CompileIL(w.Src, driver.FullOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("==== main after inlining + scalar opt + vectorization ====")
	fmt.Println(res.IL.Proc("main").String())

	scalar := measure(w, "scalar", driver.Options{OptLevel: 1}, 1)
	inlined := measure(w, "inline-only", driver.Options{OptLevel: 1, Inline: true, StrengthReduce: true}, 1)
	vector1 := measure(w, "vector", driver.Options{OptLevel: 1, Inline: true, Vectorize: true, StrengthReduce: true}, 1)
	full2 := measure(w, "vector+parallel", driver.FullOptions(), 2)

	fmt.Println("configuration        procs  kernel-cycles  speedup")
	row := func(name string, procs int, m bench.Measurement) {
		fmt.Printf("%-20s %5d %13d %8.1fx\n", name, procs, m.KernelCycles,
			bench.Speedup(scalar, m))
	}
	row("scalar (call)", 1, scalar)
	row("inlined", 1, inlined)
	row("inlined+vector", 1, vector1)
	row("inlined+vector, P=2", 2, full2)

	fmt.Printf("\npaper's claim: ~12x on a two-processor Titan; measured %.1fx at n=100\n",
		bench.Speedup(scalar, full2))

	big := bench.Daxpy(4096)
	bs := measure(big, "scalar", driver.Options{OptLevel: 1}, 1)
	bf := measure(big, "full", driver.FullOptions(), 2)
	fmt.Printf("at n=4096 (strip startup amortized): %.1fx\n", bench.Speedup(bs, bf))
}
