// The paper's §6 example: a backsolve recurrence that cannot run in
// vector — x[i+1] depends on x[i] — but where the dependence graph drives
// register promotion, pointer strength reduction and int/FP overlap,
// taking the loop from 0.5 to 1.9 simulated MFLOPS shape (≈3.8x).
package main

import (
	"fmt"
	"log"

	"repro/internal/driver"
)

const program = `
float x[2048], y[2048], z[2048];

void backsolve(float *xv, float *yv, float *zv, int n)
{
	float *p, *q;
	int i;
	p = &xv[1];
	q = &xv[0];
	for (i = 0; i < n-2; i++)
		p[i] = zv[i] * (yv[i] - q[i]);
}

int main(void)
{
	int i;
	for (i = 0; i < 2048; i++) {
		x[i] = 1.0f;
		y[i] = i;
		z[i] = 0.5f;
	}
	backsolve(x, y, z, 2048);
	return 0;
}
`

func main() {
	// Show what §6 does to the loop.
	res, err := driver.CompileIL(program, driver.Options{
		OptLevel: 1, NoAlias: true, StrengthReduce: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("==== backsolve after dependence-driven optimization ====")
	fmt.Println(res.IL.Proc("backsolve").String())

	scalar, err := driver.Run(program, driver.Options{OptLevel: 1, NoAlias: true}, 1)
	if err != nil {
		log.Fatal(err)
	}
	optimized, err := driver.Run(program, driver.Options{
		OptLevel: 1, NoAlias: true, StrengthReduce: true,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scalar only:        %8d cycles  %5.2f MFLOPS\n", scalar.Cycles, scalar.MFLOPS())
	fmt.Printf("dependence-driven:  %8d cycles  %5.2f MFLOPS\n", optimized.Cycles, optimized.MFLOPS())
	fmt.Printf("speedup %.2fx (paper: 0.5 -> 1.9 MFLOPS, 3.8x)\n",
		float64(scalar.Cycles)/float64(optimized.Cycles))
}
