// Quickstart: compile a C program for the simulated Titan, run it, and
// look at what the compiler did.
package main

import (
	"fmt"
	"log"

	"repro/internal/driver"
	"repro/internal/titan"
)

const program = `
int printf(char *fmt, ...);

float a[256], b[256], c[256];

int main(void)
{
	int i;
	float checksum;

	for (i = 0; i < 256; i++) {
		b[i] = i;
		c[i] = 256 - i;
	}

	/* This loop vectorizes: independent arrays, affine subscripts. */
	for (i = 0; i < 256; i++)
		a[i] = b[i] + 2.0f * c[i];

	checksum = 0;
	for (i = 0; i < 256; i++)
		checksum = checksum + a[i];

	printf("checksum = %g\n", checksum);
	return 0;
}
`

func main() {
	// Compile with the full paper pipeline: inlining, while->DO
	// conversion, induction-variable substitution, dependence analysis,
	// vectorization, parallelization, strength reduction.
	res, err := driver.Compile(program, driver.FullOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("vectorized loops:  %d\n", res.VectorStats.LoopsVectorized)
	fmt.Printf("vector statements: %d\n", res.VectorStats.VectorStmts)
	fmt.Printf("parallel loops:    %d\n", res.VectorStats.ParallelLoops)

	// Run on a 2-processor Titan.
	m := titan.NewMachine(res.Machine, 2)
	r, err := m.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.Output)
	fmt.Printf("cycles=%d  flops=%d  %.2f simulated MFLOPS\n",
		r.Cycles, r.FlopCount, r.MFLOPS())

	// Compare against the plain scalar compilation.
	scalar, err := driver.Run(program, driver.ScalarOptions(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scalar cycles=%d  speedup %.1fx\n",
		scalar.Cycles, float64(scalar.Cycles)/float64(r.Cycles))
}
