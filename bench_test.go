package repro

// This file regenerates the paper's evaluation (see EXPERIMENTS.md): one
// benchmark per measured claim (E1–E10), the ablations the design calls
// out (A1–A5), and the extensions (X1 loop-nest parallelization, X2 §10
// list-loop parallelization). Each benchmark simulates deterministic Titan
// runs and attaches the simulated metrics (cycles, MFLOPS, speedup) to the
// Go benchmark output via ReportMetric; wall-clock ns/op measures the
// compiler+simulator themselves.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/driver"
	"repro/internal/il"
	"repro/internal/inline"
	"repro/internal/titan"
)

func mustRun(b *testing.B, w bench.Workload, cfg bench.Config) bench.Measurement {
	b.Helper()
	m, err := bench.Run(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkE1Backsolve reproduces §6: the backsolve recurrence at 0.5
// MFLOPS with scalar optimization only, 1.9 MFLOPS with the dependence-
// driven register promotion + strength reduction + scheduling (≈3.8x).
func BenchmarkE1Backsolve(b *testing.B) {
	w := bench.Backsolve(2048)
	scalarCfg := bench.Config{Name: "scalar", Opts: driver.Options{OptLevel: 1, NoAlias: true}, Processors: 1}
	depCfg := bench.Config{Name: "dep-driven", Opts: driver.Options{OptLevel: 1, NoAlias: true, StrengthReduce: true}, Processors: 1}
	var scalar, dep bench.Measurement
	for i := 0; i < b.N; i++ {
		scalar = mustRun(b, w, scalarCfg)
		dep = mustRun(b, w, depCfg)
	}
	if dep.KernelCycles >= scalar.KernelCycles {
		b.Fatalf("§6 optimization did not win: %d vs %d", dep.KernelCycles, scalar.KernelCycles)
	}
	b.ReportMetric(scalar.MFLOPS(), "scalar-mflops")
	b.ReportMetric(dep.MFLOPS(), "opt-mflops")
	b.ReportMetric(bench.Speedup(scalar, dep), "speedup")
	b.Logf("E1 backsolve: scalar %.2f MFLOPS, §6 %.2f MFLOPS, %.2fx (paper: 0.5 → 1.9, 3.8x)",
		scalar.MFLOPS(), dep.MFLOPS(), bench.Speedup(scalar, dep))
}

// BenchmarkE2Daxpy reproduces §9: inlined daxpy, vectorized and spread
// over two processors, versus the scalar call (paper: 12x).
func BenchmarkE2Daxpy(b *testing.B) {
	w := bench.Daxpy(100)
	scalarCfg := bench.Config{Name: "scalar", Opts: driver.Options{OptLevel: 1}, Processors: 1}
	fullCfg := bench.Config{Name: "full P=2", Opts: driver.FullOptions(), Processors: 2}
	var scalar, full bench.Measurement
	for i := 0; i < b.N; i++ {
		scalar = mustRun(b, w, scalarCfg)
		full = mustRun(b, w, fullCfg)
	}
	sp := bench.Speedup(scalar, full)
	if sp < 2 {
		b.Fatalf("§9 speedup collapsed: %.2fx", sp)
	}
	b.ReportMetric(sp, "speedup")
	b.ReportMetric(full.MFLOPS(), "mflops")
	b.Logf("E2 daxpy n=100: scalar %d cycles, full(P=2) %d cycles, %.1fx (paper: 12x)",
		scalar.KernelCycles, full.KernelCycles, sp)
	// Larger vectors amortize strip and fork startup; report that shape
	// too.
	wBig := bench.Daxpy(4096)
	scalarBig := mustRun(b, wBig, scalarCfg)
	fullBig := mustRun(b, wBig, fullCfg)
	b.Logf("E2 daxpy n=4096: %.1fx", bench.Speedup(scalarBig, fullBig))
	b.ReportMetric(bench.Speedup(scalarBig, fullBig), "speedup-n4096")
}

// BenchmarkE3CopyLoop reproduces §5.3: while(n){*a++=*b++;n--;} becomes a
// single vector statement after backtracking induction-variable
// substitution.
func BenchmarkE3CopyLoop(b *testing.B) {
	w := bench.CopyLoop(1024)
	var res *driver.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = driver.Compile(w.Src, driver.FullOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.VectorStats.VectorStmts < 1 {
		b.Fatalf("copy loop did not vectorize: %+v", res.VectorStats)
	}
	scalar := mustRun(b, w, bench.Config{Name: "scalar", Opts: driver.Options{OptLevel: 1}, Processors: 1})
	vec := mustRun(b, w, bench.Config{Name: "vector", Opts: driver.FullOptions(), Processors: 1})
	b.ReportMetric(bench.Speedup(scalar, vec), "speedup")
	b.Logf("E3 copy loop: vector stmts=%d, speedup %.1fx", res.VectorStats.VectorStmts, bench.Speedup(scalar, vec))
}

// BenchmarkE4ReverseAxpy reproduces §5.3's Fortran example: the auxiliary
// downward induction variable becomes explicit and the loop vectorizes.
func BenchmarkE4ReverseAxpy(b *testing.B) {
	w := bench.ReverseAxpy(1024)
	var res *driver.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = driver.Compile(w.Src, driver.FullOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.VectorStats.VectorStmts < 1 {
		b.Fatalf("reverse axpy did not vectorize: %+v", res.VectorStats)
	}
	scalar := mustRun(b, w, bench.Config{Name: "scalar", Opts: driver.Options{OptLevel: 1}, Processors: 1})
	vec := mustRun(b, w, bench.Config{Name: "vector", Opts: driver.FullOptions(), Processors: 1})
	b.ReportMetric(bench.Speedup(scalar, vec), "speedup")
	b.Logf("E4 reverse axpy: vector stmts=%d, speedup %.1fx", res.VectorStats.VectorStmts, bench.Speedup(scalar, vec))
}

// BenchmarkE5DeadInline reproduces §8: inlining daxpy with alpha = 0.0
// lets constant propagation prove the body unreachable; the inlined
// statement count collapses.
func BenchmarkE5DeadInline(b *testing.B) {
	src := `
void daxpy1(float *x, float y, float a, float z)
{
	if (a == 0.0)
		return;
	*x = y + a * z;
}
float cell;
int main(void)
{
	daxpy1(&cell, 1.0f, 0.0f, 2.0f);
	return 0;
}
`
	var before, after int
	for i := 0; i < b.N; i++ {
		inlinedOnly, err := driver.CompileIL(src, driver.Options{OptLevel: 0, Inline: true})
		if err != nil {
			b.Fatal(err)
		}
		before = il.CountStmts(inlinedOnly.IL.Proc("main").Body)
		optimized, err := driver.CompileIL(src, driver.Options{OptLevel: 1, Inline: true})
		if err != nil {
			b.Fatal(err)
		}
		after = il.CountStmts(optimized.IL.Proc("main").Body)
	}
	if after >= before {
		b.Fatalf("no shrink: %d → %d", before, after)
	}
	b.ReportMetric(float64(before), "stmts-inlined")
	b.ReportMetric(float64(after), "stmts-optimized")
	b.Logf("E5 dead inline: %d stmts after inlining, %d after §8 propagation", before, after)
}

// BenchmarkE6WhileConv reproduces §5.2: the countdown while loop converts
// to a DO loop and, with everything downstream enabled, vectorizes.
func BenchmarkE6WhileConv(b *testing.B) {
	src := `
float out[512];
void fill(float v, int n)
{
	int i, temp;
	i = n - 1;
	while (i) {
		out[i] = v;
		temp = i;
		i = temp - 1;
	}
}
int main(void) { fill(2.5f, 512); ` + bench.KernelMarker + `
	return 0; }
`
	var res *driver.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = driver.CompileIL(src, driver.FullOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	hasDo := false
	il.WalkStmts(res.IL.Proc("fill").Body, func(s il.Stmt) bool {
		switch s.(type) {
		case *il.DoLoop, *il.DoParallel, *il.VectorAssign:
			hasDo = true
		case *il.While:
			b.Fatalf("while loop survived:\n%s", res.IL.Proc("fill"))
		}
		return true
	})
	if !hasDo {
		b.Fatal("no DO/vector form produced")
	}
	b.ReportMetric(float64(res.VectorStats.VectorStmts), "vector-stmts")
	b.Logf("E6 while→DO: vector stmts=%d", res.VectorStats.VectorStmts)
}

// BenchmarkE7Scaling reproduces §2: spreading a vector loop over 1–4
// processors.
func BenchmarkE7Scaling(b *testing.B) {
	w := bench.VectorAdd(16384)
	var rows []string
	var cycles [5]int64
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for p := 1; p <= 4; p++ {
			m := mustRun(b, w, bench.Config{Name: fmt.Sprintf("P=%d", p), Opts: driver.FullOptions(), Processors: p})
			cycles[p] = m.KernelCycles
			rows = append(rows, fmt.Sprintf("P=%d:%d", p, m.KernelCycles))
		}
	}
	if cycles[2] >= cycles[1] || cycles[4] >= cycles[2] {
		b.Fatalf("no scaling: %v", rows)
	}
	b.ReportMetric(float64(cycles[1])/float64(cycles[2]), "speedup-p2")
	b.ReportMetric(float64(cycles[1])/float64(cycles[4]), "speedup-p4")
	b.Logf("E7 scaling: %s (p2 %.2fx, p4 %.2fx)", strings.Join(rows, " "),
		float64(cycles[1])/float64(cycles[2]), float64(cycles[1])/float64(cycles[4]))
}

// BenchmarkE8Lowering measures the front end itself on the §4 rewrites
// (expression pairs, condition duplication) and asserts the volatile
// write-once property of assignment chains.
func BenchmarkE8Lowering(b *testing.B) {
	src := `
volatile int v;
int chain(int a, int bb) {
	a = v = bb;
	return a;
}
void loops(int n) {
	while (n--) ;
}
`
	var res *driver.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = driver.CompileIL(src, driver.Options{OptLevel: 0})
		if err != nil {
			b.Fatal(err)
		}
	}
	p := res.IL.Proc("chain")
	vid := p.LookupVar("v")
	writes, reads := 0, 0
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if as, ok := s.(*il.Assign); ok {
			if vr, ok := as.Dst.(*il.VarRef); ok && vr.ID == vid {
				writes++
			}
			if il.UsesVar(as.Src, vid) {
				reads++
			}
		}
		return true
	})
	if writes != 1 || reads != 0 {
		b.Fatalf("volatile chain: %d writes, %d reads", writes, reads)
	}
	b.ReportMetric(float64(il.CountStmts(p.Body)), "il-stmts")
	b.Logf("E8 lowering: a=v=b writes v once, reads it never")
}

// BenchmarkE9Catalog reproduces §7: inlining from a serialized catalog
// produces identical code (and identical cycle counts) to same-file
// inlining.
func BenchmarkE9Catalog(b *testing.B) {
	lib := `
void saxpy(float *y, float *x, float alpha, int n)
{
	int i;
	for (i = 0; i < n; i++)
		y[i] = y[i] + alpha * x[i];
}
`
	app := `
void saxpy(float *y, float *x, float alpha, int n);
float u[512], v[512];
int main(void)
{
	int i;
	for (i = 0; i < 512; i++) { u[i] = 1; v[i] = i; }
	saxpy(u, v, 0.5f, 512);
	return 0;
}
`
	var same, cat titan.Result
	for i := 0; i < b.N; i++ {
		var buf strings.Builder
		if err := driver.WriteCatalogFromSource(&buf, lib); err != nil {
			b.Fatal(err)
		}
		catalog, err := inline.ReadCatalog(strings.NewReader(buf.String()))
		if err != nil {
			b.Fatal(err)
		}
		same, err = driver.Run(lib+app, driver.FullOptions(), 1)
		if err != nil {
			b.Fatal(err)
		}
		opts := driver.FullOptions()
		opts.Catalogs = []*inline.Catalog{catalog}
		cat, err = driver.Run(app, opts, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	if same.Cycles != cat.Cycles {
		b.Fatalf("catalog inlining diverges: %d vs %d cycles", cat.Cycles, same.Cycles)
	}
	b.ReportMetric(float64(cat.Cycles), "cycles")
	b.Logf("E9 catalog: same-file %d cycles == catalog %d cycles", same.Cycles, cat.Cycles)
}

// BenchmarkE10StructArray reproduces §10: arrays embedded within
// structures (graphics transforms) vectorize, without strip loops for the
// 4-element rows.
func BenchmarkE10StructArray(b *testing.B) {
	w := bench.Transform4x4(1024)
	var res *driver.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = driver.Compile(w.Src, driver.FullOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.VectorStats.VectorStmts < 1 {
		b.Fatalf("struct-array loops did not vectorize: %+v", res.VectorStats)
	}
	scalar := mustRun(b, w, bench.Config{Name: "scalar", Opts: driver.Options{OptLevel: 1}, Processors: 1})
	full := mustRun(b, w, bench.Config{Name: "full", Opts: driver.FullOptions(), Processors: 1})
	b.ReportMetric(float64(res.VectorStats.VectorStmts), "vector-stmts")
	b.ReportMetric(bench.Speedup(scalar, full), "speedup")
	b.Logf("E10 struct arrays: vector stmts=%d, speedup %.2fx", res.VectorStats.VectorStmts, bench.Speedup(scalar, full))
}

// ----------------------------------------------------------- ablations

// BenchmarkA1IVSubNoSR reproduces §6's warning: induction-variable
// substitution deoptimizes scalar code unless strength reduction undoes
// the damage. The §5.3 pointer-bump loop shows it directly: the source's
// cheap pointer increments become explicit multiplications under ivsub.
func BenchmarkA1IVSubNoSR(b *testing.B) {
	w := bench.CopyLoop(2048)
	plain := bench.Config{Name: "scalar", Opts: driver.Options{OptLevel: 1, NoAlias: true}, Processors: 1}
	ivOnly := bench.Config{Name: "ivsub-only", Opts: driver.Options{OptLevel: 1, NoAlias: true, ForceIVSub: true, NoSchedule: true}, Processors: 1}
	repaired := bench.Config{Name: "ivsub+SR", Opts: driver.Options{OptLevel: 1, NoAlias: true, StrengthReduce: true}, Processors: 1}
	var mPlain, mIV, mFix bench.Measurement
	for i := 0; i < b.N; i++ {
		mPlain = mustRun(b, w, plain)
		mIV = mustRun(b, w, ivOnly)
		mFix = mustRun(b, w, repaired)
	}
	if mIV.KernelCycles <= mPlain.KernelCycles {
		b.Logf("note: ivsub alone did not slow this loop (%d vs %d)", mIV.KernelCycles, mPlain.KernelCycles)
	}
	if mFix.KernelCycles >= mIV.KernelCycles {
		b.Fatalf("strength reduction failed to repair ivsub: %d vs %d", mFix.KernelCycles, mIV.KernelCycles)
	}
	b.ReportMetric(float64(mPlain.KernelCycles), "scalar-cycles")
	b.ReportMetric(float64(mIV.KernelCycles), "ivsub-cycles")
	b.ReportMetric(float64(mFix.KernelCycles), "repaired-cycles")
	b.Logf("A1: scalar=%d, ivsub-only=%d, ivsub+strength=%d cycles",
		mPlain.KernelCycles, mIV.KernelCycles, mFix.KernelCycles)
}

// BenchmarkA2Backtracking contrasts the backtracking substitution with the
// single-pass "straightforward" scheme on the §5.3 copy loop.
func BenchmarkA2Backtracking(b *testing.B) {
	w := bench.CopyLoop(1024)
	var full, simple *driver.Result
	var err error
	for i := 0; i < b.N; i++ {
		full, err = driver.Compile(w.Src, driver.FullOptions())
		if err != nil {
			b.Fatal(err)
		}
		simpleOpts := driver.FullOptions()
		simpleOpts.SimpleIVSub = true
		simpleOpts.NoCopyProp = true
		simple, err = driver.Compile(w.Src, simpleOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(full.VectorStats.VectorStmts), "vector-stmts-backtracking")
	b.ReportMetric(float64(simple.VectorStats.VectorStmts), "vector-stmts-simple")
	b.Logf("A2: backtracking vectorized %d stmts, straightforward %d",
		full.VectorStats.VectorStmts, simple.VectorStats.VectorStmts)
}

// BenchmarkA3StripLength sweeps the strip length.
func BenchmarkA3StripLength(b *testing.B) {
	w := bench.VectorAdd(8192)
	var rows []string
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, vl := range []int{8, 32, 128} {
			opts := driver.Options{OptLevel: 1, Inline: true, Vectorize: true, StrengthReduce: true, VL: vl}
			m := mustRun(b, w, bench.Config{Name: fmt.Sprintf("vl%d", vl), Opts: opts, Processors: 1})
			rows = append(rows, fmt.Sprintf("VL=%d:%d", vl, m.KernelCycles))
			b.ReportMetric(float64(m.KernelCycles), fmt.Sprintf("cycles-vl%d", vl))
		}
	}
	b.Logf("A3 strip length: %s", strings.Join(rows, " "))
}

// BenchmarkA4AliasRoutes contrasts §9's three routes to vectorizing a
// pointer-parameter loop: none (serial), -noalias, #pragma safe, and
// inlining.
func BenchmarkA4AliasRoutes(b *testing.B) {
	base := `
float dst[1024], src[1024];
void copyk(float *a, float *b, int n)
{
	int i;
%s	for (i = 0; i < n; i++)
		a[i] = b[i];
}
int main(void)
{
	int i;
	for (i = 0; i < 1024; i++) src[i] = i;
	copyk(dst, src, 1024);
	return 0;
}
`
	plain := fmt.Sprintf(base, "")
	pragma := fmt.Sprintf(base, "#pragma safe\n")
	type route struct {
		name string
		src  string
		opts driver.Options
	}
	routes := []route{
		{"none", plain, driver.Options{OptLevel: 1, Vectorize: true, StrengthReduce: true}},
		{"noalias", plain, driver.Options{OptLevel: 1, Vectorize: true, StrengthReduce: true, NoAlias: true}},
		{"pragma", pragma, driver.Options{OptLevel: 1, Vectorize: true, StrengthReduce: true}},
		{"inline", plain, driver.Options{OptLevel: 1, Inline: true, Vectorize: true, StrengthReduce: true}},
	}
	var counts []string
	for i := 0; i < b.N; i++ {
		counts = counts[:0]
		for _, r := range routes {
			res, err := driver.Compile(r.src, r.opts)
			if err != nil {
				b.Fatal(err)
			}
			counts = append(counts, fmt.Sprintf("%s:%d", r.name, res.VectorStats.VectorStmts))
			b.ReportMetric(float64(res.VectorStats.VectorStmts), "vec-"+r.name)
		}
	}
	b.Logf("A4 alias routes (vector stmts): %s", strings.Join(counts, " "))
}

// BenchmarkA5Overlap toggles §6's dependence-informed instruction
// scheduling.
func BenchmarkA5Overlap(b *testing.B) {
	w := bench.Backsolve(2048)
	on := bench.Config{Name: "sched", Opts: driver.Options{OptLevel: 1, NoAlias: true, StrengthReduce: true}, Processors: 1}
	offOpts := driver.Options{OptLevel: 1, NoAlias: true, StrengthReduce: true, NoSchedule: true}
	off := bench.Config{Name: "nosched", Opts: offOpts, Processors: 1}
	var mOn, mOff bench.Measurement
	for i := 0; i < b.N; i++ {
		mOn = mustRun(b, w, on)
		mOff = mustRun(b, w, off)
	}
	if mOn.KernelCycles > mOff.KernelCycles {
		b.Fatalf("scheduling hurt: %d vs %d", mOn.KernelCycles, mOff.KernelCycles)
	}
	b.ReportMetric(float64(mOff.KernelCycles), "cycles-nosched")
	b.ReportMetric(float64(mOn.KernelCycles), "cycles-sched")
	b.ReportMetric(bench.Speedup(mOff, mOn), "speedup")
	b.Logf("A5 scheduling: off=%d on=%d cycles (%.2fx)", mOff.KernelCycles, mOn.KernelCycles, bench.Speedup(mOff, mOn))
}

// BenchmarkX1MatrixNest measures the extension benches: the §2
// outer-parallel / inner-vector execution model on a dense matrix update.
func BenchmarkX1MatrixNest(b *testing.B) {
	src := `
float a[128][128], b2[128][128];
void scale(void) {
	int i, j;
	for (i = 0; i < 128; i++)
		for (j = 0; j < 128; j++)
			a[i][j] = b2[i][j] * 2.0f + 1.0f;
}
int main(void) {
	int i, j;
	for (i = 0; i < 128; i++)
		for (j = 0; j < 128; j++)
			b2[i][j] = i + j;
	scale(); ` + bench.KernelMarker + `
	return 0;
}
`
	w := bench.Workload{Name: "matrixnest", Src: src}
	var serial, p1, p4 bench.Measurement
	for i := 0; i < b.N; i++ {
		serial = mustRun(b, w, bench.Config{Name: "scalar", Opts: driver.Options{OptLevel: 1}, Processors: 1})
		p1 = mustRun(b, w, bench.Config{Name: "full p1", Opts: driver.FullOptions(), Processors: 1})
		p4 = mustRun(b, w, bench.Config{Name: "full p4", Opts: driver.FullOptions(), Processors: 4})
	}
	if p4.KernelCycles >= p1.KernelCycles {
		b.Fatalf("nest did not scale: p1=%d p4=%d", p1.KernelCycles, p4.KernelCycles)
	}
	b.ReportMetric(bench.Speedup(serial, p1), "speedup-p1")
	b.ReportMetric(bench.Speedup(serial, p4), "speedup-p4")
	b.Logf("X1 matrix nest: scalar=%d, vector p1=%d (%.1fx), vector+parallel p4=%d (%.1fx)",
		serial.KernelCycles, p1.KernelCycles, bench.Speedup(serial, p1),
		p4.KernelCycles, bench.Speedup(serial, p4))
}

// BenchmarkX2ListParallel measures the §10 extension: linked-list loops
// spread across processors by serializing the pointer chase.
func BenchmarkX2ListParallel(b *testing.B) {
	src := `
struct node { float val; struct node *next; };
struct node pool[600];
void polish(struct node *head)
{
	struct node *p;
	float x, acc;
	p = head;
	while (p) {
		x = p->val;
		acc = 1.0f + x * (1.0f + x * (1.0f + x * (1.0f + x)));
		acc = acc + acc * acc;
		acc = acc / (1.0f + x * x);
		p->val = acc;
		p = p->next;
	}
}
int main(void)
{
	int i;
	for (i = 0; i < 600; i++) {
		pool[i].val = i % 7;
		if (i < 599)
			pool[i].next = &pool[i + 1];
		else
			pool[i].next = (struct node *)0;
	}
	polish(&pool[0]); ` + bench.KernelMarker + `
	return 0;
}
`
	w := bench.Workload{Name: "listloop", Src: src}
	serialOpts := driver.FullOptions()
	parOpts := driver.FullOptions()
	parOpts.ListParallel = true
	var serial, par bench.Measurement
	for i := 0; i < b.N; i++ {
		serial = mustRun(b, w, bench.Config{Name: "serial chase", Opts: serialOpts, Processors: 4})
		par = mustRun(b, w, bench.Config{Name: "list-parallel", Opts: parOpts, Processors: 4})
	}
	if par.KernelCycles >= serial.KernelCycles {
		b.Fatalf("list parallelization lost: %d vs %d", par.KernelCycles, serial.KernelCycles)
	}
	b.ReportMetric(bench.Speedup(serial, par), "speedup-p4")
	b.Logf("X2 list loop (P=4): serial %d, parallel %d cycles (%.2fx)",
		serial.KernelCycles, par.KernelCycles, bench.Speedup(serial, par))
}
