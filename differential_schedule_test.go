package repro

// Differential tests for the schedule layer: the refactor that moved the
// loop phases (vectorize, parallelize, strength-reduce) onto explicit
// per-loop Schedules must be a pure re-plumbing. Compiling with no
// schedule set (ctx.Schedules = nil, the pre-refactor code path) must be
// bit-identical — IL text, generated assembly, phase stats, remark
// stream, and simulated cycles — to compiling with an explicit set that
// pins schedule.Default() on every loop in the program. Any constant
// that escaped the refactor (a baked-in VL, an implicit width) would
// show up as a diff on one of these levels.

import (
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/il"
	"repro/internal/pass"
	"repro/internal/schedule"
	"repro/internal/titan"
)

// defaultSetFor discovers every DO loop in src as the loop phases will
// see it (the post-scalarize snapshot) and pins schedule.Default() on
// each, so the explicit-schedule compile exercises the Lookup path on
// every loop rather than falling through on a missing entry.
func defaultSetFor(t *testing.T, src string, opts driver.Options) *schedule.Set {
	t.Helper()
	set := schedule.NewSet()
	snapName := pass.PassScalar
	if opts.OptLevel < 1 {
		snapName = pass.SnapshotInput
	}
	ctx := pass.NewContext()
	ctx.Snapshot = func(name string, prog *il.Program) {
		if name != snapName {
			return
		}
		for _, p := range prog.Procs {
			il.WalkStmts(p.Body, func(s il.Stmt) bool {
				if loop, ok := s.(*il.DoLoop); ok {
					set.Put(schedule.KeyFor(p.Name, loop.Pos), schedule.Default())
				}
				return true
			})
		}
	}
	if _, err := driver.CompileILWith(src, opts, ctx); err != nil {
		t.Fatalf("discovery compile: %v", err)
	}
	return set
}

// compileUnderSchedules compiles and simulates src with the given
// schedule set (nil = the legacy no-schedule path), returning the
// artifacts, the rendered remark stream, and the simulation outcome.
func compileUnderSchedules(t *testing.T, src string, opts driver.Options, set *schedule.Set) (*driver.Result, string, titan.Result) {
	t.Helper()
	ctx := pass.NewContext()
	ctx.Schedules = set
	res, err := driver.CompileWith(src, opts, ctx)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var sb strings.Builder
	for _, d := range ctx.Diags.All() {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	m := titan.NewMachine(res.Machine, 4)
	r, err := m.Run("main")
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return res, sb.String(), r
}

// TestScheduleDefaultDifferential: nil schedules vs an explicit
// everything-default set, over every evaluation workload, under both the
// scalar and the full configuration.
func TestScheduleDefaultDifferential(t *testing.T) {
	configs := []struct {
		name string
		opts driver.Options
	}{
		{"scalar", driver.ScalarOptions()},
		{"full", driver.FullOptions()},
	}
	for _, w := range evalWorkloads() {
		for _, cfg := range configs {
			t.Run(w.Name+"/"+cfg.name, func(t *testing.T) {
				set := defaultSetFor(t, w.Src, cfg.opts)
				if set.Len() == 0 {
					t.Fatal("discovered no loops — the differential would be vacuous")
				}
				legacy, legacyRemarks, lr := compileUnderSchedules(t, w.Src, cfg.opts, nil)
				explicit, explicitRemarks, er := compileUnderSchedules(t, w.Src, cfg.opts, set)

				if got, want := driver.DumpIL(explicit), driver.DumpIL(legacy); got != want {
					t.Errorf("IL differs under explicit default schedules:\n--- explicit ---\n%s\n--- legacy ---\n%s", got, want)
				}
				if got, want := driver.Disassemble(explicit), driver.Disassemble(legacy); got != want {
					t.Error("generated assembly differs under explicit default schedules")
				}
				if explicit.VectorStats != legacy.VectorStats {
					t.Errorf("vector stats differ: explicit %+v, legacy %+v", explicit.VectorStats, legacy.VectorStats)
				}
				if explicit.ParallelStats != legacy.ParallelStats {
					t.Errorf("parallel stats differ: explicit %+v, legacy %+v", explicit.ParallelStats, legacy.ParallelStats)
				}
				if explicit.StrengthStats != legacy.StrengthStats {
					t.Errorf("strength stats differ: explicit %+v, legacy %+v", explicit.StrengthStats, legacy.StrengthStats)
				}
				if explicitRemarks != legacyRemarks {
					t.Errorf("remark stream differs:\n--- explicit ---\n%s\n--- legacy ---\n%s", explicitRemarks, legacyRemarks)
				}
				if er.Cycles != lr.Cycles || er.FlopCount != lr.FlopCount ||
					er.ExitCode != lr.ExitCode || er.Output != lr.Output {
					t.Errorf("simulation differs: explicit cycles=%d exit=%d, legacy cycles=%d exit=%d",
						er.Cycles, er.ExitCode, lr.Cycles, lr.ExitCode)
				}
			})
		}
	}
}

// TestScheduleNonDefaultDiffers is the counterweight: an explicit
// non-default schedule must actually change the compile (otherwise the
// differential above proves nothing about the plumbing). Halving the
// strip length on daxpy's vectorized loop must alter the assembly and
// the remark stream while preserving program behavior.
func TestScheduleNonDefaultDiffers(t *testing.T) {
	w := evalWorkloads()[1] // E2 daxpy
	opts := driver.FullOptions()
	set := defaultSetFor(t, w.Src, opts)

	tuned := schedule.NewSet()
	for _, k := range set.Keys() {
		tuned.Put(k, schedule.Schedule{VL: schedule.DefaultVL / 2, Unroll: 1})
	}
	legacy, legacyRemarks, lr := compileUnderSchedules(t, w.Src, opts, nil)
	half, halfRemarks, hr := compileUnderSchedules(t, w.Src, opts, tuned)

	if driver.Disassemble(half) == driver.Disassemble(legacy) {
		t.Error("halving VL produced identical assembly — schedules are not reaching the phases")
	}
	if halfRemarks == legacyRemarks {
		t.Error("halving VL left the remark stream unchanged")
	}
	if !strings.Contains(halfRemarks, "vl=16") {
		t.Errorf("remarks do not surface the explicit schedule:\n%s", halfRemarks)
	}
	if hr.ExitCode != lr.ExitCode || hr.Output != lr.Output {
		t.Errorf("non-default schedule changed program behavior: exit %d vs %d", hr.ExitCode, lr.ExitCode)
	}
}
