package repro

// End-to-end validation of DOACROSS pipelining: each recurrence kernel
// below carries a computable constant-distance dependence, so before this
// change the parallelizer rejected it with par-carried-dep and the loop
// ran serial. Now the loop must compile DOACROSS (a par-doacross remark
// naming the dependence, its distance, and the sync stride), the fast
// engine must stay bit-identical to the reference interpreter at every
// processor count, the program output must match the serial compile
// exactly, and at four processors the pipelined kernel must beat the
// serial kernel by the margin the change claims.

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/titan"
)

// doacrossWorkloads is the recurrence suite: a lag-3 autoregressive
// filter, an order-8 damped smoothing pass whose distance covers the
// machine width, and a wavefront flattened to a distance-32 recurrence.
func doacrossWorkloads() []bench.Workload {
	return []bench.Workload{
		bench.LagRecurrence(4096),
		bench.SmoothDamp(4096),
		bench.Wavefront(4096),
	}
}

// serialOptions is the DOACROSS experiments' baseline: the full pipeline
// with parallelization off, so the only delta to FullOptions is whether
// the recurrence loop pipelines.
func serialOptions() driver.Options {
	o := driver.FullOptions()
	o.Parallelize = false
	return o
}

// TestDoacrossRemarks pins the compiler verdict: every recurrence kernel
// gets exactly one par-doacross remark carrying the dependence, the
// distance, and the sync stride — and no par-carried-dep rejection for
// the same loop, preserving the one-verdict-per-loop invariant.
func TestDoacrossRemarks(t *testing.T) {
	for _, w := range doacrossWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			var doacross []diag.Diagnostic
			for _, d := range compileRemarks(t, w.Src) {
				if d.Code == diag.ParDoacross {
					doacross = append(doacross, d)
				}
			}
			if len(doacross) == 0 {
				t.Fatal("no par-doacross remark: recurrence kernel did not pipeline")
			}
			for _, d := range doacross {
				for _, key := range []string{"dep", "distance", "sync_stride"} {
					if d.Args[key] == "" {
						t.Errorf("par-doacross remark missing %q arg: %s", key, d)
					}
				}
				if !strings.Contains(d.Args["dep"], "carried") {
					t.Errorf("par-doacross dep arg %q does not name a carried dependence", d.Args["dep"])
				}
			}
		})
	}
}

// TestDoacrossMatchesReferenceAndSerial is the correctness half of the
// acceptance claim: at p=1/2/4 the fast engine's Result is bit-identical
// to the reference interpreter's, and the program's observable behavior
// (exit code and output, both data-dependent checksums here) is identical
// to the serial compile's.
func TestDoacrossMatchesReferenceAndSerial(t *testing.T) {
	for _, w := range doacrossWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			serial, err := driver.Run(w.Src, serialOptions(), 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := driver.Compile(w.Src, driver.FullOptions())
			if err != nil {
				t.Fatal(err)
			}
			for _, procs := range []int{1, 2, 4} {
				fast, errF := titan.NewMachine(res.Machine, procs).Run("main")
				ref, errR := titan.NewMachine(res.Machine, procs).RunReference("main")
				if errF != nil || errR != nil {
					t.Fatalf("p=%d: engine err %v, reference err %v", procs, errF, errR)
				}
				if fast != ref {
					t.Errorf("p=%d: engine %+v != reference %+v", procs, fast, ref)
				}
				if fast.ExitCode != serial.ExitCode || fast.Output != serial.Output {
					t.Errorf("p=%d: exit/output (%d, %q) differs from serial compile (%d, %q)",
						procs, fast.ExitCode, fast.Output, serial.ExitCode, serial.Output)
				}
			}
		})
	}
}

// TestDoacrossSpeedup is the performance half: the kernel-differential
// cycle count at four processors must never exceed the serial compile's,
// and at least one kernel must hit the claimed >=1.5x.
func TestDoacrossSpeedup(t *testing.T) {
	serialCfg := bench.Config{Name: "serial", Opts: serialOptions(), Processors: 1}
	doacrossCfg := bench.Config{Name: "doacross", Opts: driver.FullOptions(), Processors: 4}
	best := 0.0
	for _, w := range doacrossWorkloads() {
		ser, err := bench.Run(w, serialCfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := bench.Run(w, doacrossCfg)
		if err != nil {
			t.Fatal(err)
		}
		sp := bench.Speedup(ser, par)
		t.Logf("%s: serial=%d cycles, doacross p4=%d cycles, speedup=%.2fx",
			w.Name, ser.KernelCycles, par.KernelCycles, sp)
		if par.KernelCycles > ser.KernelCycles {
			t.Errorf("%s: DOACROSS at p=4 is slower than serial (%d > %d cycles)",
				w.Name, par.KernelCycles, ser.KernelCycles)
		}
		if sp > best {
			best = sp
		}
	}
	if best < 1.5 {
		t.Errorf("best DOACROSS speedup at p=4 is %.2fx, want >= 1.5x", best)
	}
}
