package repro

// Differential tests for the incremental analysis engine: compiling with
// the analysis cache (the pass manager's default) must be observably
// identical to compiling with caching disabled (pass.Context.Analysis =
// nil, the pre-cache behavior). "Identical" is checked at three levels —
// the optimized IL text, the per-phase stats, and the simulated cycle
// counts of the generated Titan code — over the paper's evaluation
// workloads, so a stale cache entry that survives a rewrite cannot hide.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/driver"
	"repro/internal/pass"
	"repro/internal/titan"
)

// evalWorkloads is the E-series corpus the differential check runs over:
// recurrences, pointer loops, while→DO conversions, auxiliary induction
// variables, and struct-embedded arrays each stress different
// cache-invalidation paths.
func evalWorkloads() []bench.Workload {
	return []bench.Workload{
		bench.Backsolve(256),   // E1: §6 recurrence
		bench.Daxpy(256),       // E2: §9 pointer daxpy behind guards
		bench.CopyLoop(256),    // E3: §5.3 while-loop pointer copy
		bench.ReverseAxpy(256), // E4: §5.3 auxiliary induction variable
		bench.VectorAdd(256),   // E7: scaling workload
		bench.Transform4x4(16), // E10: arrays embedded in structures
	}
}

// compileAndSimulate compiles src under opts with the given analysis
// cache (nil = caching off) and runs the result, returning the compile
// artifacts and the simulation outcome.
func compileAndSimulate(t *testing.T, src string, opts driver.Options, ac *analysis.Cache) (*driver.Result, titan.Result) {
	t.Helper()
	ctx := pass.NewContext()
	ctx.Analysis = ac
	res, err := driver.CompileWith(src, opts, ctx)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := titan.NewMachine(res.Machine, 4)
	r, err := m.Run("main")
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return res, r
}

// TestCacheDifferentialIdentical: cache-on vs cache-off must produce
// bit-identical IL, identical phase stats, and identical simulated
// cycles on every evaluation workload under both the scalar and the
// full configuration.
func TestCacheDifferentialIdentical(t *testing.T) {
	configs := []struct {
		name string
		opts driver.Options
	}{
		{"scalar", driver.ScalarOptions()},
		{"full", driver.FullOptions()},
	}
	for _, w := range evalWorkloads() {
		for _, cfg := range configs {
			t.Run(w.Name+"/"+cfg.name, func(t *testing.T) {
				on, ron := compileAndSimulate(t, w.Src, cfg.opts, analysis.NewCache())
				off, roff := compileAndSimulate(t, w.Src, cfg.opts, nil)

				if got, want := driver.DumpIL(on), driver.DumpIL(off); got != want {
					t.Errorf("IL differs with cache on:\n--- cached ---\n%s\n--- uncached ---\n%s", got, want)
				}
				if on.VectorStats != off.VectorStats {
					t.Errorf("vector stats differ: cached %+v, uncached %+v", on.VectorStats, off.VectorStats)
				}
				if on.ParallelStats != off.ParallelStats {
					t.Errorf("parallel stats differ: cached %+v, uncached %+v", on.ParallelStats, off.ParallelStats)
				}
				if on.StrengthStats != off.StrengthStats {
					t.Errorf("strength stats differ: cached %+v, uncached %+v", on.StrengthStats, off.StrengthStats)
				}
				if ron.Cycles != roff.Cycles || ron.FlopCount != roff.FlopCount || ron.ExitCode != roff.ExitCode {
					t.Errorf("simulation differs: cached cycles=%d flops=%d exit=%d, uncached cycles=%d flops=%d exit=%d",
						ron.Cycles, ron.FlopCount, ron.ExitCode, roff.Cycles, roff.FlopCount, roff.ExitCode)
				}

				// The cached run must actually have exercised the cache,
				// and the uncached run must report nothing.
				st := on.Report.Analysis
				if st.DataflowMisses == 0 {
					t.Errorf("cached run recorded no dataflow activity: %+v", st)
				}
				if st.DataflowHits == 0 {
					t.Errorf("cached run never hit the dataflow cache: %+v", st)
				}
				if off.Report.Analysis != (analysis.Stats{}) {
					t.Errorf("uncached run reported cache stats: %+v", off.Report.Analysis)
				}
			})
		}
	}
}

// raceProgram builds one source with n independent loop procedures so the
// pass manager's worker pool analyzes many procedures concurrently
// against one shared cache.
func raceProgram(n int) string {
	var sb []byte
	sb = fmt.Appendf(sb, "float a[256], b[256], c[256];\n")
	for i := 0; i < n; i++ {
		sb = fmt.Appendf(sb, `
void k%d(int n)
{
	int i;
	for (i = 0; i < n; i++)
		a[i] = b[i] * %d.0f + c[i];
	while (n) {
		c[n-1] = a[n-1] + b[n-1];
		n--;
	}
}
`, i, i+1)
	}
	sb = fmt.Appendf(sb, "\nint main(void)\n{\n")
	for i := 0; i < n; i++ {
		sb = fmt.Appendf(sb, "\tk%d(64);\n", i)
	}
	sb = fmt.Appendf(sb, "\treturn 0;\n}\n")
	return string(sb)
}

// TestAnalysisCacheConcurrent hammers one shared analysis cache through
// the pass manager's worker pool: a program with many loop procedures,
// compiled repeatedly with a wide worker pool, plus several whole
// compiles in flight at once. Run under -race this is the data-race
// check for the cache's locking; under plain `go test` it still verifies
// the concurrent result matches the serial one.
func TestAnalysisCacheConcurrent(t *testing.T) {
	src := raceProgram(12)
	opts := driver.FullOptions()

	serial := func() string {
		ctx := pass.NewContext()
		ctx.Workers = 1
		res, err := driver.CompileILWith(src, opts, ctx)
		if err != nil {
			t.Fatalf("serial compile: %v", err)
		}
		return driver.DumpIL(res)
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				ctx := pass.NewContext()
				ctx.Workers = 2 * runtime.GOMAXPROCS(0)
				res, err := driver.CompileILWith(src, opts, ctx)
				if err != nil {
					t.Errorf("concurrent compile: %v", err)
					return
				}
				if got := driver.DumpIL(res); got != serial {
					t.Errorf("concurrent compile produced different IL than serial compile")
					return
				}
			}
		}()
	}
	wg.Wait()
}
