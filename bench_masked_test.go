package repro

// Masked-execution speedup benchmarks: simulated kernel cycles of the
// conditional suite (internal/bench.Clip, ThresholdAccum, SparseSaxpy)
// under the three MaskStrategy settings — off (the vectorizer rejects
// the conditional loop), branchy-serial (if-converted but executed with
// scalar branches), and masked (predicated vector strips, the default)
// — against the scalar -O1 baseline. Cycle counts are deterministic, so
// one iteration measures everything; TestMain writes the rows to
// BENCH_masked.json so CI can archive and smoke-check them per commit:
//
//	go test -run=NONE -bench=Masked -benchtime=1x .

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/driver"
	"repro/internal/il"
	"repro/internal/pass"
	"repro/internal/schedule"
	"repro/internal/titan"
)

// maskedBenchRow is one workload's result as written to
// BENCH_masked.json. Cycles are kernel-differential. LaneUtilization is
// MaskLanesActive/MaskLanesTotal of the masked run — the density the
// dense-timing masked strips actually used.
type maskedBenchRow struct {
	Workload         string  `json:"workload"`
	N                int     `json:"n"`
	ScalarCycles     int64   `json:"scalar_cycles"`
	OffCycles        int64   `json:"off_cycles"`
	BranchyCycles    int64   `json:"branchy_cycles"`
	MaskedCycles     int64   `json:"masked_cycles"`
	SpeedupVsScalar  float64 `json:"speedup_vs_scalar"`
	SpeedupVsBranchy float64 `json:"speedup_vs_branchy"`
	LaneUtilization  float64 `json:"lane_utilization"`
}

var maskedBench struct {
	mu   sync.Mutex
	rows []maskedBenchRow
}

func recordMaskedBench(r maskedBenchRow) {
	maskedBench.mu.Lock()
	defer maskedBench.mu.Unlock()
	for _, old := range maskedBench.rows {
		if old.Workload == r.Workload {
			return // deterministic: every run records the same row
		}
	}
	maskedBench.rows = append(maskedBench.rows, r)
}

// condSetFor discovers the loops of src that still carry a conditional
// at the post-scalarize snapshot (where the loop phases and the tuner
// see them) and pins the given MaskStrategy on each, leaving every
// other loop on its default schedule.
func condSetFor(b *testing.B, src string, strategy string) *schedule.Set {
	b.Helper()
	set := schedule.NewSet()
	ctx := pass.NewContext()
	ctx.Snapshot = func(name string, prog *il.Program) {
		if name != pass.PassScalar {
			return
		}
		for _, p := range prog.Procs {
			il.WalkStmts(p.Body, func(s il.Stmt) bool {
				loop, ok := s.(*il.DoLoop)
				if !ok {
					return true
				}
				hasCond := false
				il.WalkStmts(loop.Body, func(inner il.Stmt) bool {
					switch inner.(type) {
					case *il.If, *il.PredAssign:
						hasCond = true
					}
					return true
				})
				if hasCond {
					set.Put(schedule.KeyFor(p.Name, loop.Pos),
						schedule.Schedule{VL: schedule.DefaultVL, Unroll: 1, MaskStrategy: strategy})
				}
				return true
			})
		}
	}
	if _, err := driver.CompileILWith(src, driver.FullOptions(), ctx); err != nil {
		b.Fatal(err)
	}
	return set
}

// runMasked compiles src with the strategy pinned on its conditional
// loops (empty strategy = nil set, the default masked path) and
// simulates it on one processor.
func runMasked(b *testing.B, src string, opts driver.Options, strategy string) titan.Result {
	b.Helper()
	ctx := pass.NewContext()
	if strategy != "" {
		ctx.Schedules = condSetFor(b, src, strategy)
	}
	res, err := driver.CompileWith(src, opts, ctx)
	if err != nil {
		b.Fatal(err)
	}
	r, err := titan.NewMachine(res.Machine, 1).Run("main")
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// kernelCycles measures one configuration kernel-differentially (the
// workload minus its /*KERNEL*/ line is measured separately and
// subtracted), returning the kernel cycle count and the full run.
func kernelCycles(b *testing.B, w bench.Workload, opts driver.Options, strategy string) (int64, titan.Result) {
	b.Helper()
	full := runMasked(b, w.Src, opts, strategy)
	base := runMasked(b, bench.StripKernel(w.Src), opts, strategy)
	kc := full.Cycles - base.Cycles
	if kc < 1 {
		kc = 1
	}
	return kc, full
}

// BenchmarkMasked measures the conditional suite under all three mask
// strategies plus the scalar baseline. ns/op is compile+simulate host
// time (incidental); the artifact rows carry the simulated cycle
// counts, which are the claim of this change.
func BenchmarkMasked(b *testing.B) {
	const n = 2048
	workloads := []bench.Workload{
		bench.Clip(n),
		bench.ThresholdAccum(n),
		bench.SparseSaxpy(n),
	}
	for _, w := range workloads {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var row maskedBenchRow
			for i := 0; i < b.N; i++ {
				scalar, _ := kernelCycles(b, w, driver.Options{OptLevel: 1}, "")
				off, _ := kernelCycles(b, w, driver.FullOptions(), schedule.MaskOff)
				branchy, _ := kernelCycles(b, w, driver.FullOptions(), schedule.MaskBranchy)
				masked, full := kernelCycles(b, w, driver.FullOptions(), "")
				if full.MaskOps < 1 {
					b.Fatalf("masked run retired no masked ops — strategy not applied")
				}
				util := 0.0
				if full.MaskLanesTotal > 0 {
					util = float64(full.MaskLanesActive) / float64(full.MaskLanesTotal)
				}
				row = maskedBenchRow{
					Workload:         w.Name,
					N:                n,
					ScalarCycles:     scalar,
					OffCycles:        off,
					BranchyCycles:    branchy,
					MaskedCycles:     masked,
					SpeedupVsScalar:  float64(scalar) / float64(masked),
					SpeedupVsBranchy: float64(branchy) / float64(masked),
					LaneUtilization:  util,
				}
			}
			b.ReportMetric(float64(row.ScalarCycles), "scalar_cycles")
			b.ReportMetric(float64(row.MaskedCycles), "masked_cycles")
			b.ReportMetric(row.SpeedupVsScalar, "speedup_vs_scalar")
			b.ReportMetric(row.SpeedupVsBranchy, "speedup_vs_branchy")
			recordMaskedBench(row)
		})
	}
}
