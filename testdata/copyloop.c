/* The paper's section 5.3 pointer-copy loop. Watch the induction-variable
 * substitution with:  go run ./cmd/ildump testdata/copyloop.c */
float dst[1024], src[1024];

void copyloop(float *a, float *b, int n)
{
	while (n) {
		*a++ = *b++;
		n--;
	}
}

int main(void)
{
	int i;
	for (i = 0; i < 1024; i++) src[i] = i;
	copyloop(dst, src, 1024);
	return 0;
}
