/* The paper's section 9 program: compile with
 *   go run ./cmd/titanrun -configs testdata/daxpy.c
 * to reproduce the inlining -> vectorization -> parallelization chain. */
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
	if (n <= 0)
		return;
	if (alpha == 0)
		return;
	for (; n; n--)
		*x++ = *y++ + alpha * *z++;
}

int main(void)
{
	float a[100], b[100], c[100];
	int i;
	for (i = 0; i < 100; i++) {
		b[i] = i;
		c[i] = 1;
	}
	daxpy(a, b, c, 1.0, 100);
	return 0;
}
