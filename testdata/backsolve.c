/* The paper's section 6 example: a recurrence that cannot vectorize but
 * responds to dependence-driven register promotion and strength reduction.
 *   go run ./cmd/titanrun -configs testdata/backsolve.c
 *   go run ./cmd/titancc -noalias -S testdata/backsolve.c       */
float x[2048], y[2048], z[2048];

void backsolve(float *xv, float *yv, float *zv, int n)
{
	float *p, *q;
	int i;
	p = &xv[1];
	q = &xv[0];
	for (i = 0; i < n-2; i++)
		p[i] = zv[i] * (yv[i] - q[i]);
}

int main(void)
{
	int i;
	for (i = 0; i < 2048; i++) {
		x[i] = 1.0f;
		y[i] = i;
		z[i] = 0.5f;
	}
	backsolve(x, y, z, 2048);
	return 0;
}
