/* Conditional kernel: the guarded store used to block vectorization
 * (vect-scalar-flow); if-conversion + masked execution vectorize it. */
float in[512], out[512];

void clip(float limit, int n)
{
	int i;
	for (i = 0; i < n; i++)
		if (in[i] > limit)
			out[i] = limit;
}

int main(void)
{
	int i;
	for (i = 0; i < 512; i++) {
		in[i] = i;
		out[i] = in[i];
	}
	clip(64.0f, 512);
	return 0;
}
