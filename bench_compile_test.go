package repro

// Compile-throughput benchmarks for the incremental analysis engine:
// ns/op and allocs/op of driver.Compile over large synthetic programs
// (internal/bench.SyntheticProgram), with the analysis cache on (the
// default) and off (the pre-cache baseline). Besides the standard
// benchmark output, every measured sub-benchmark is recorded and
// TestMain writes the set to BENCH_compile.json so CI can archive the
// numbers per commit:
//
//	go test -run=NONE -bench=Compile -benchtime=1x .
//
// produces one row per sub-benchmark with ns_per_op, allocs_per_op, and
// bytes_per_op.

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/driver"
	"repro/internal/pass"
)

// compileBenchRow is one sub-benchmark's result as written to
// BENCH_compile.json.
type compileBenchRow struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

var compileBench struct {
	mu   sync.Mutex
	rows []compileBenchRow
}

func recordCompileBench(r compileBenchRow) {
	compileBench.mu.Lock()
	compileBench.rows = append(compileBench.rows, r)
	compileBench.mu.Unlock()
}

// TestMain exists only to flush BENCH_compile.json and BENCH_sim.json
// after a -bench run; plain `go test` records nothing and writes nothing.
func TestMain(m *testing.M) {
	code := m.Run()
	compileBench.mu.Lock()
	rows := compileBench.rows
	compileBench.mu.Unlock()
	if len(rows) > 0 {
		if blob, err := json.MarshalIndent(rows, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_compile.json", append(blob, '\n'), 0o644)
		}
	}
	tuneBench.mu.Lock()
	tuneRows := tuneBench.rows
	tuneBench.mu.Unlock()
	if len(tuneRows) > 0 {
		if blob, err := json.MarshalIndent(tuneRows, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_tune.json", append(blob, '\n'), 0o644)
		}
	}
	doacrossBench.mu.Lock()
	doacrossRows := doacrossBench.rows
	doacrossBench.mu.Unlock()
	if len(doacrossRows) > 0 {
		if blob, err := json.MarshalIndent(doacrossRows, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_doacross.json", append(blob, '\n'), 0o644)
		}
	}
	maskedBench.mu.Lock()
	maskedRows := maskedBench.rows
	maskedBench.mu.Unlock()
	if len(maskedRows) > 0 {
		if blob, err := json.MarshalIndent(maskedRows, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_masked.json", append(blob, '\n'), 0o644)
		}
	}
	simBench.mu.Lock()
	simRows := simBench.rows
	simBench.mu.Unlock()
	if len(simRows) > 0 {
		geo, doall := simBenchSpeedups(simRows)
		doc := struct {
			ESeriesGeomeanSpeedupP1 float64       `json:"eseries_geomean_speedup_p1"`
			SyntheticDoallSpeedupP4 float64       `json:"syntheticdoall_speedup_p4"`
			GOMAXPROCS              int           `json:"gomaxprocs"`
			Rows                    []simBenchRow `json:"rows"`
		}{geo, doall, runtime.GOMAXPROCS(0), simRows}
		if blob, err := json.MarshalIndent(doc, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_sim.json", append(blob, '\n'), 0o644)
		}
	}
	os.Exit(code)
}

// benchCompile measures driver.Compile end to end at FullOptions with
// the given cache mode, reporting allocs the standard way and recording
// the row for the JSON artifact. Workers is pinned to 1 so ns/op
// measures work done, not scheduling luck, and so allocs/op is exact.
func benchCompile(b *testing.B, src string, cached bool) {
	opts := driver.FullOptions()
	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := pass.NewContext()
		ctx.Workers = 1
		if !cached {
			ctx.Analysis = nil
		}
		if _, err := driver.CompileWith(src, opts, ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	n := float64(b.N)
	recordCompileBench(compileBenchRow{
		Name:        b.Name(),
		N:           b.N,
		NsPerOp:     float64(b.Elapsed().Nanoseconds()) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	})
}

// BenchmarkCompile is the throughput suite: two program sizes, cache on
// vs off. The cached/uncached pair on the same source is the measured
// claim of this change — cached must win on both ns/op and allocs/op.
func BenchmarkCompile(b *testing.B) {
	sizes := []struct {
		name string
		cfg  bench.GenConfig
	}{
		{"small", bench.GenConfig{Procs: 4, LoopsPerProc: 2, ChainWidth: 4}},
		{"large", bench.GenConfig{Procs: 24, LoopsPerProc: 4, ChainWidth: 8}},
	}
	for _, sz := range sizes {
		src := bench.SyntheticProgram(sz.cfg)
		b.Run(sz.name+"/cached", func(b *testing.B) { benchCompile(b, src, true) })
		b.Run(sz.name+"/uncached", func(b *testing.B) { benchCompile(b, src, false) })
	}
}
