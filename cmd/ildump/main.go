// Command ildump shows a C file's intermediate form between pipeline
// phases — the teaching/debugging view of how the paper's transformations
// rewrite a program (lowering, inlining, while→DO conversion,
// induction-variable substitution, vectorization, strength reduction).
//
// It compiles the file once under the full pipeline and prints the IL the
// pass manager's snapshot hook reports at every pass boundary, so the
// phase names and ordering here are exactly the manager's — the tool
// cannot drift from the real pipeline.
//
// Usage:
//
//	ildump [-after pass] [-phase N] [-remarks] file.c
//
// With -after, only the snapshot following the named pass is shown
// (e.g. -after lower, -after scalarize, -after vectorize). With -phase N,
// only the N'th snapshot (0 = lowered IL) is shown. With -remarks, the
// pipeline's structured diagnostics (per-loop vectorize/parallelize
// verdicts, inline decisions, scalar-opt rewrites) are appended after the
// snapshots.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/driver"
	"repro/internal/il"
	"repro/internal/pass"
)

func main() {
	after := flag.String("after", "", "show only the snapshot after this pass")
	phase := flag.Int("phase", -1, "show only the N'th snapshot (0 = lowered IL)")
	remarks := flag.Bool("remarks", false, "append the pipeline's structured diagnostics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ildump [-after pass] [-phase N] [-remarks] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if err := dump(os.Stdout, string(src), *after, *phase, *remarks); err != nil {
		fatal(err)
	}
}

// dump compiles src once and writes the requested pass-boundary
// snapshots. An empty after and negative phase mean "all"; remarks
// appends the diagnostic stream after the snapshots.
func dump(w io.Writer, src, after string, phase int, remarks bool) error {
	type snapshot struct {
		name string
		text string
	}
	var snaps []snapshot
	ctx := pass.NewContext()
	ctx.Snapshot = func(name string, prog *il.Program) {
		snaps = append(snaps, snapshot{name, prog.String()})
	}
	opts := driver.FullOptions()
	if _, err := driver.CompileILWith(src, opts, ctx); err != nil {
		return err
	}
	shown := 0
	for i, s := range snaps {
		if after != "" && s.name != after {
			continue
		}
		if phase >= 0 && phase != i {
			continue
		}
		header := "after " + s.name
		if s.name == pass.SnapshotInput {
			header = "lowered IL"
		}
		fmt.Fprintf(w, "==== phase %d: %s ====\n%s\n", i, header, s.text)
		shown++
	}
	if shown == 0 {
		return fmt.Errorf("no snapshot matched (passes: lower %v)", pass.NewManager(opts).Passes())
	}
	if remarks {
		fmt.Fprintln(w, "==== remarks ====")
		for _, d := range ctx.Diags.All() {
			fmt.Fprintln(w, d.String())
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ildump:", err)
	os.Exit(1)
}
