// Command ildump shows a C file's intermediate form at successive pipeline
// phases — the teaching/debugging view of how the paper's transformations
// rewrite a program (lowering, while→DO conversion, induction-variable
// substitution, vectorization).
//
// Usage:
//
//	ildump [-phase N] file.c
//
// Phases:
//
//	0  raw lowering ((SL,E) pairs made explicit, for→while)
//	1  after inline expansion
//	2  after scalar optimization (while→DO, constants, IV substitution)
//	3  after vectorization and parallelization
//	4  after strength reduction (final IL)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/driver"
)

func main() {
	phase := flag.Int("phase", -1, "show only this phase (0-4)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ildump [-phase N] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	type ph struct {
		name string
		opts driver.Options
	}
	phases := []ph{
		{"phase 0: lowered IL", driver.Options{OptLevel: 0}},
		{"phase 1: after inlining", driver.Options{OptLevel: 0, Inline: true}},
		{"phase 2: after scalar optimization", driver.Options{OptLevel: 1, Inline: true, ForceIVSub: true}},
		{"phase 3: after vectorization", driver.Options{OptLevel: 1, Inline: true, Vectorize: true, Parallelize: true}},
		{"phase 4: final IL", driver.FullOptions()},
	}
	for i, p := range phases {
		if *phase >= 0 && *phase != i {
			continue
		}
		res, err := driver.CompileIL(string(src), p.opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("==== %s ====\n%s\n", p.name, driver.DumpIL(res))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ildump:", err)
	os.Exit(1)
}
