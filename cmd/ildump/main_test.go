package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The §9 daxpy program — the same source the driver's golden IL test pins
// (testdata/daxpy_main_full.il over there is its final IL).
const daxpySrc = `
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
	if (n <= 0)
		return;
	if (alpha == 0)
		return;
	for (; n; n--)
		*x++ = *y++ + alpha * *z++;
}

int main(void)
{
	float a[100], b[100], c[100];
	daxpy(a, b, c, 1.0, 100);
	return 0;
}
`

// TestPhaseOrder pins the snapshot-hook phase names and their ordering for
// the full pipeline. If the §5.2/§6 pass order regresses (while→DO before
// use-def, strength reduction before vectorization, ...) this fails
// loudly.
func TestPhaseOrder(t *testing.T) {
	var sb strings.Builder
	if err := dump(&sb, daxpySrc, "", -1, false); err != nil {
		t.Fatal(err)
	}
	headers := regexp.MustCompile(`==== phase \d+: [^=]+ ====`).FindAllString(sb.String(), -1)
	want := []string{
		"==== phase 0: lowered IL ====",
		"==== phase 1: after inline ====",
		"==== phase 2: after scalarize ====",
		"==== phase 3: after nest-parallelize ====",
		"==== phase 4: after ifconvert ====",
		"==== phase 5: after vectorize ====",
		"==== phase 6: after parallelize ====",
		"==== phase 7: after strength ====",
		"==== phase 8: after cleanup ====",
	}
	if len(headers) != len(want) {
		t.Fatalf("got %d phases %v, want %d", len(headers), headers, len(want))
	}
	for i, h := range headers {
		if strings.TrimSpace(h) != want[i] {
			t.Errorf("phase %d: got %q, want %q", i, h, want[i])
		}
	}
}

// TestGoldenDump pins the full between-phase IL dump. Regenerate after an
// intentional pipeline change with:
//
//	UPDATE_GOLDEN=1 go test ./cmd/ildump
func TestGoldenDump(t *testing.T) {
	var sb strings.Builder
	if err := dump(&sb, daxpySrc, "", -1, false); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "daxpy_phases.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with UPDATE_GOLDEN=1): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("golden mismatch for %s.\n--- want\n%s\n--- got\n%s", path, want, got)
	}
}

// TestDumpFilters checks the -after and -phase selectors.
func TestDumpFilters(t *testing.T) {
	var sb strings.Builder
	if err := dump(&sb, daxpySrc, "vectorize", -1, false); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "==== phase"); n != 1 {
		t.Errorf("-after vectorize: got %d headers, want 1", n)
	}
	if !strings.Contains(sb.String(), "after vectorize") {
		t.Errorf("-after vectorize: wrong header in %q", sb.String())
	}
	sb.Reset()
	if err := dump(&sb, daxpySrc, "", 0, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "phase 0: lowered IL") {
		t.Errorf("-phase 0: missing lowered IL header in %q", sb.String())
	}
	if err := dump(&strings.Builder{}, daxpySrc, "no-such-pass", -1, false); err == nil {
		t.Error("unknown pass name should error")
	}
}

// TestDumpRemarks checks that -remarks appends the diagnostic stream
// after the snapshots and that every remark carries a real source
// position.
func TestDumpRemarks(t *testing.T) {
	var sb strings.Builder
	if err := dump(&sb, daxpySrc, "", 0, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	idx := strings.Index(out, "==== remarks ====")
	if idx < 0 {
		t.Fatalf("missing remarks section in %q", out)
	}
	body := strings.TrimSpace(out[idx+len("==== remarks ===="):])
	if body == "" {
		t.Fatal("remarks section is empty for the full daxpy pipeline")
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "0:0:") {
			t.Errorf("remark with zero position: %s", line)
		}
	}
	for _, code := range []string{"vect-", "par-"} {
		if !strings.Contains(body, code) {
			t.Errorf("remarks lack a %s* verdict:\n%s", code, body)
		}
	}
}
