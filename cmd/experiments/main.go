// Command experiments runs the complete paper-reproduction suite and
// prints the paper-vs-measured table recorded in EXPERIMENTS.md. It is the
// standalone equivalent of `go test -bench=. .`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/driver"
	"repro/internal/il"
)

func main() {
	timePasses := flag.Bool("time-passes", false, "also print the full pipeline's per-pass report for the §9 daxpy program")
	flag.Parse()

	if *timePasses {
		res, err := driver.Compile(bench.Daxpy(4096).Src, driver.FullOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Report.String())
		fmt.Println()
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()
	fmt.Fprintln(w, "id\texperiment\tpaper\tmeasured")

	must := func(m bench.Measurement, err error) bench.Measurement {
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	// E1: §6 backsolve.
	{
		wl := bench.Backsolve(2048)
		scalar := must(bench.Run(wl, bench.Config{Name: "scalar", Opts: driver.Options{OptLevel: 1, NoAlias: true}, Processors: 1}))
		dep := must(bench.Run(wl, bench.Config{Name: "dep", Opts: driver.Options{OptLevel: 1, NoAlias: true, StrengthReduce: true}, Processors: 1}))
		fmt.Fprintf(w, "E1\tbacksolve §6\t0.5 → 1.9 MFLOPS (3.8x)\t%.2f → %.2f MFLOPS (%.1fx)\n",
			scalar.MFLOPS(), dep.MFLOPS(), bench.Speedup(scalar, dep))
	}
	// E2: §9 daxpy.
	{
		for _, n := range []int{100, 4096} {
			wl := bench.Daxpy(n)
			scalar := must(bench.Run(wl, bench.Config{Name: "scalar", Opts: driver.Options{OptLevel: 1}, Processors: 1}))
			full := must(bench.Run(wl, bench.Config{Name: "full", Opts: driver.FullOptions(), Processors: 2}))
			fmt.Fprintf(w, "E2\tdaxpy n=%d §9, P=2\t12x\t%.1fx\n", n, bench.Speedup(scalar, full))
		}
	}
	// E3/E4: §5.3 loops.
	{
		for _, c := range []struct {
			id string
			wl bench.Workload
		}{{"E3", bench.CopyLoop(1024)}, {"E4", bench.ReverseAxpy(1024)}} {
			res, err := driver.Compile(c.wl.Src, driver.FullOptions())
			if err != nil {
				log.Fatal(err)
			}
			scalar := must(bench.Run(c.wl, bench.Config{Name: "scalar", Opts: driver.Options{OptLevel: 1}, Processors: 1}))
			vec := must(bench.Run(c.wl, bench.Config{Name: "vec", Opts: driver.FullOptions(), Processors: 1}))
			fmt.Fprintf(w, "%s\t%s §5.3\tvectorizes\t%d vector stmts, %.1fx\n",
				c.id, c.wl.Name, res.Report.Vector.VectorStmts, bench.Speedup(scalar, vec))
		}
	}
	// E5: §8 dead inline.
	{
		src := `
void daxpy1(float *x, float y, float a, float z)
{
	if (a == 0.0)
		return;
	*x = y + a * z;
}
float cell;
int main(void) { daxpy1(&cell, 1.0f, 0.0f, 2.0f); return 0; }
`
		raw, err := driver.CompileIL(src, driver.Options{OptLevel: 0, Inline: true})
		if err != nil {
			log.Fatal(err)
		}
		opt, err := driver.CompileIL(src, driver.Options{OptLevel: 1, Inline: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "E5\tinlined guard elimination §8\tbody unreachable\t%d → %d stmts\n",
			il.CountStmts(raw.IL.Proc("main").Body), il.CountStmts(opt.IL.Proc("main").Body))
	}
	// E7: scaling.
	{
		wl := bench.VectorAdd(16384)
		var cyc [5]int64
		for p := 1; p <= 4; p++ {
			m := must(bench.Run(wl, bench.Config{Name: "full", Opts: driver.FullOptions(), Processors: p}))
			cyc[p] = m.KernelCycles
		}
		fmt.Fprintf(w, "E7\tprocessor scaling §2\tsignificant speedups\tP2 %.2fx, P4 %.2fx\n",
			float64(cyc[1])/float64(cyc[2]), float64(cyc[1])/float64(cyc[4]))
	}
	// E10: struct arrays.
	{
		wl := bench.Transform4x4(1024)
		res, err := driver.Compile(wl.Src, driver.FullOptions())
		if err != nil {
			log.Fatal(err)
		}
		scalar := must(bench.Run(wl, bench.Config{Name: "scalar", Opts: driver.Options{OptLevel: 1}, Processors: 1}))
		full := must(bench.Run(wl, bench.Config{Name: "full", Opts: driver.FullOptions(), Processors: 1}))
		fmt.Fprintf(w, "E10\tarrays in structs §10\tvectorizes\t%d vector stmts, %.2fx\n",
			res.Report.Vector.VectorStmts, bench.Speedup(scalar, full))
	}
	// A1: ivsub deoptimization.
	{
		wl := bench.CopyLoop(2048)
		plain := must(bench.Run(wl, bench.Config{Name: "p", Opts: driver.Options{OptLevel: 1, NoAlias: true}, Processors: 1}))
		iv := must(bench.Run(wl, bench.Config{Name: "iv", Opts: driver.Options{OptLevel: 1, NoAlias: true, ForceIVSub: true, NoSchedule: true}, Processors: 1}))
		fix := must(bench.Run(wl, bench.Config{Name: "fix", Opts: driver.Options{OptLevel: 1, NoAlias: true, StrengthReduce: true}, Processors: 1}))
		fmt.Fprintf(w, "A1\tivsub deoptimizes scalar loops §6\tSR undoes damage\tscalar %d, ivsub %d, +SR %d cycles\n",
			plain.KernelCycles, iv.KernelCycles, fix.KernelCycles)
	}
	// A5: scheduling.
	{
		wl := bench.Backsolve(2048)
		on := must(bench.Run(wl, bench.Config{Name: "on", Opts: driver.Options{OptLevel: 1, NoAlias: true, StrengthReduce: true}, Processors: 1}))
		off := must(bench.Run(wl, bench.Config{Name: "off", Opts: driver.Options{OptLevel: 1, NoAlias: true, StrengthReduce: true, NoSchedule: true}, Processors: 1}))
		fmt.Fprintf(w, "A5\tdependence-informed scheduling §6\tbetter overlap\t%d → %d cycles (%.2fx)\n",
			off.KernelCycles, on.KernelCycles, bench.Speedup(off, on))
	}
}
