// Command titanload drives a titand cluster with a synthetic compile
// workload and reports what the cluster actually delivered: sustained
// throughput, latency percentiles, and — the number cluster mode exists
// for — the measured cross-node cache hit rate.
//
// Usage:
//
//	titanload -targets URL[,URL...] [flags]
//
// Flags:
//
//	-targets URLs    comma-separated titand base URLs (required)
//	-duration D      how long to drive load (default 10s)
//	-concurrency N   concurrent client workers (default 8)
//	-sources N       distinct synthetic translation units (default 32)
//	-batch N         send batches of N units via /compile/batch
//	                 (0: single POST /compile requests)
//	-client ID       X-Client-ID prefix; worker i sends <ID>-<i>
//	-o PATH          write the JSON report to PATH (default stdout)
//
// Workers round-robin requests across the targets, so every source is
// eventually requested on a node that did not compile it; those
// requests can only be answered without recompiling through the remote
// peer tier, which is what the remote hit rate measures. The report
// ends with a /metrics scrape of every node (per-peer health, ring
// state, remote hit/miss/timeout counters).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// Report is the titanload JSON output.
type Report struct {
	Targets     string    `json:"targets"`
	Duration    string    `json:"duration"`
	Concurrency int       `json:"concurrency"`
	Sources     int       `json:"sources"`
	BatchSize   int       `json:"batch_size"`
	Started     time.Time `json:"started"`
	ElapsedNS   int64     `json:"elapsed_ns"`

	Requests      int64   `json:"requests"` // HTTP round-trips
	Units         int64   `json:"units"`    // translation units requested
	OK            int64   `json:"ok"`
	Failed        int64   `json:"failed"`       // non-200 units
	RateLimited   int64   `json:"rate_limited"` // 429 round-trips
	Compiled      int64   `json:"compiled"`
	LocalHits     int64   `json:"local_hits"`  // memory/disk/inflight
	RemoteHits    int64   `json:"remote_hits"` // served by the owning peer
	RemoteHitRate float64 `json:"remote_hit_rate"`
	UnitsPerSec   float64 `json:"units_per_sec"`

	Latency LatencyReport `json:"latency"`

	Nodes []NodeReport `json:"nodes"`
}

// LatencyReport summarizes per-request wall time.
type LatencyReport struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// NodeReport is one node's own /metrics view after the run.
type NodeReport struct {
	URL     string                   `json:"url"`
	Error   string                   `json:"error,omitempty"`
	Metrics *service.MetricsResponse `json:"metrics,omitempty"`
}

// tally accumulates worker results.
type tally struct {
	requests, units, ok, failed, rateLimited atomic.Int64
	compiled, localHits, remoteHits          atomic.Int64

	mu        sync.Mutex
	latencies []time.Duration
}

func (tl *tally) observe(d time.Duration) {
	tl.mu.Lock()
	tl.latencies = append(tl.latencies, d)
	tl.mu.Unlock()
}

func (tl *tally) unit(status int, art *service.CompileResponse) {
	if status != http.StatusOK || art == nil {
		tl.failed.Add(1)
		return
	}
	tl.ok.Add(1)
	switch {
	case art.CacheTier == service.TierRemote:
		tl.remoteHits.Add(1)
	case art.Cached:
		tl.localHits.Add(1)
	default:
		tl.compiled.Add(1)
	}
}

func main() {
	var (
		targets     = flag.String("targets", "", "comma-separated titand base URLs")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		concurrency = flag.Int("concurrency", 8, "concurrent client workers")
		sources     = flag.Int("sources", 32, "distinct synthetic translation units")
		batch       = flag.Int("batch", 0, "units per /compile/batch request (0: single requests)")
		client      = flag.String("client", "titanload", "X-Client-ID prefix")
		out         = flag.String("o", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	log.SetPrefix("titanload: ")
	log.SetFlags(0)

	urls := splitList(*targets)
	if len(urls) == 0 {
		log.Fatal("-targets is required (comma-separated titand base URLs)")
	}
	if *concurrency < 1 || *sources < 1 {
		log.Fatal("-concurrency and -sources must be positive")
	}

	srcs := make([]string, *sources)
	for i := range srcs {
		srcs[i] = syntheticSource(i)
	}

	tl := &tally{}
	httpc := &http.Client{Timeout: 2 * time.Minute}
	start := time.Now()
	deadline := start.Add(*duration)
	// Sources enter the working set one at a time across the first half
	// of the run, like fresh translation units landing in a build. A new
	// unit is compiled once on whichever node sees it first; by the time
	// the other nodes' rotations reach it, the artifact has settled on
	// its ring owner — so their first encounters exercise the remote
	// tier instead of folding into one warmup compile storm.
	intro := *duration / (2 * time.Duration(*sources))
	if intro <= 0 {
		intro = time.Millisecond
	}
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("%s-%d", *client, w)
			for i := 0; ; i++ {
				now := time.Now()
				if !now.Before(deadline) {
					return
				}
				active := int(now.Sub(start)/intro) + 1
				if active > len(srcs) {
					active = len(srcs)
				}
				// Stride by worker so different workers hit the same
				// source on different nodes — the cross-node case.
				target := urls[(w+i)%len(urls)]
				if *batch > 0 {
					runBatch(httpc, tl, target, id, srcs[:active], (w*7+i)*(*batch), *batch)
				} else {
					runSingle(httpc, tl, target, id, srcs[(w*7+i)%active])
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		Targets:     strings.Join(urls, ","),
		Duration:    duration.String(),
		Concurrency: *concurrency,
		Sources:     *sources,
		BatchSize:   *batch,
		Started:     start.UTC(),
		ElapsedNS:   elapsed.Nanoseconds(),
		Requests:    tl.requests.Load(),
		Units:       tl.units.Load(),
		OK:          tl.ok.Load(),
		Failed:      tl.failed.Load(),
		RateLimited: tl.rateLimited.Load(),
		Compiled:    tl.compiled.Load(),
		LocalHits:   tl.localHits.Load(),
		RemoteHits:  tl.remoteHits.Load(),
		Latency:     summarize(tl.latencies),
	}
	if rep.OK > 0 {
		rep.RemoteHitRate = float64(rep.RemoteHits) / float64(rep.OK)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.UnitsPerSec = float64(rep.OK) / secs
	}
	for _, u := range urls {
		rep.Nodes = append(rep.Nodes, scrapeNode(httpc, u))
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d units in %s: %.1f units/s, %.1f%% remote hits, %d failed",
		rep.OK, elapsed.Round(time.Millisecond), rep.UnitsPerSec, 100*rep.RemoteHitRate, rep.Failed)
}

func runSingle(httpc *http.Client, tl *tally, target, clientID, src string) {
	body, _ := json.Marshal(service.CompileRequest{
		Source:  src,
		Options: service.CompileOptions{Inline: true, Vectorize: true, Parallelize: true},
	})
	status, blob := post(httpc, tl, target+"/compile", clientID, body)
	tl.units.Add(1)
	if status != http.StatusOK {
		tl.unit(status, nil)
		return
	}
	var art service.CompileResponse
	if err := json.Unmarshal(blob, &art); err != nil {
		tl.unit(http.StatusInternalServerError, nil)
		return
	}
	tl.unit(status, &art)
}

func runBatch(httpc *http.Client, tl *tally, target, clientID string, srcs []string, off, n int) {
	set := make([]string, n)
	for i := range set {
		set[i] = srcs[(off+i)%len(srcs)]
	}
	body, _ := json.Marshal(service.BatchRequest{
		Sources: set,
		Options: service.CompileOptions{Inline: true, Vectorize: true, Parallelize: true},
	})
	status, blob := post(httpc, tl, target+"/compile/batch", clientID, body)
	tl.units.Add(int64(n))
	if status != http.StatusOK {
		tl.failed.Add(int64(n))
		return
	}
	var bresp service.BatchResponse
	if err := json.Unmarshal(blob, &bresp); err != nil {
		tl.failed.Add(int64(n))
		return
	}
	for _, res := range bresp.Results {
		tl.unit(res.Status, res.Artifact)
	}
}

// post sends one JSON request and records the round-trip. It returns
// the status (0 on transport error) and the response body.
func post(httpc *http.Client, tl *tally, url, clientID string, body []byte) (int, []byte) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", clientID)
	t0 := time.Now()
	resp, err := httpc.Do(req)
	tl.requests.Add(1)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	tl.observe(time.Since(t0))
	if resp.StatusCode == http.StatusTooManyRequests {
		tl.rateLimited.Add(1)
	}
	return resp.StatusCode, buf.Bytes()
}

func scrapeNode(httpc *http.Client, url string) NodeReport {
	nr := NodeReport{URL: url}
	resp, err := httpc.Get(url + "/metrics")
	if err != nil {
		nr.Error = err.Error()
		return nr
	}
	defer resp.Body.Close()
	var m service.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		nr.Error = err.Error()
		return nr
	}
	nr.Metrics = &m
	return nr
}

func summarize(lats []time.Duration) LatencyReport {
	var lr LatencyReport
	if len(lats) == 0 {
		return lr
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var total time.Duration
	for _, d := range lats {
		total += d
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(lats)-1))
		return lats[idx]
	}
	lr.Count = int64(len(lats))
	lr.MeanMS = ms(total / time.Duration(len(lats)))
	lr.P50MS = ms(pct(0.50))
	lr.P90MS = ms(pct(0.90))
	lr.P99MS = ms(pct(0.99))
	lr.MaxMS = ms(lats[len(lats)-1])
	return lr
}

// syntheticSource builds the i'th distinct translation unit: a
// vectorizable loop kernel with unit-specific constants so every unit
// gets its own cache key but costs about the same to compile.
func syntheticSource(i int) string {
	return fmt.Sprintf(`
void kernel%d(float *x, float *y, float *z, int n)
{
	int i;
	for (i = 0; i < n; i++)
		x[i] = y[i] * %d.0f + z[i] + %d.0f;
}

int main(void)
{
	float a[64], b[64], c[64];
	int i;
	for (i = 0; i < 64; i++) {
		b[i] = i;
		c[i] = 1;
	}
	kernel%d(a, b, c, 64);
	return 0;
}
`, i, i%9+1, i%17, i)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
