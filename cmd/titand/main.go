// Command titand runs the Titan compile service: a long-lived HTTP
// daemon that compiles C for the simulated Titan behind a bounded worker
// pool, deduplicates identical in-flight requests, and serves repeats
// from a content-addressed artifact cache (see internal/service).
//
// Usage:
//
//	titand [flags]
//
// Flags:
//
//	-addr host:port   listen address (default 127.0.0.1:8344)
//	-workers N        concurrent compiles (default GOMAXPROCS)
//	-queue N          queued compiles beyond the running ones before
//	                  requests are rejected with 503 (default 64)
//	-timeout D        per-request wait bound, e.g. 30s (default 60s)
//	-cache-mb N       in-memory artifact cache budget (default 64)
//	-cache-dir DIR    also persist artifacts under DIR so restarts
//	                  serve them warm (default off)
//
// Endpoints: POST /compile, POST+GET /catalogs, GET /metrics,
// GET /healthz. SIGINT/SIGTERM shut down gracefully: the listener
// closes, in-flight compiles drain and publish to the cache, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8344", "listen address")
		workers  = flag.Int("workers", 0, "concurrent compiles (0: GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "queued compiles before 503")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request wait bound")
		cacheMB  = flag.Int64("cache-mb", 64, "in-memory artifact cache budget (MiB)")
		cacheDir = flag.String("cache-dir", "", "persist artifacts under this directory (off when empty)")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight compiles at shutdown")
	)
	flag.Parse()
	log.SetPrefix("titand: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	srv, err := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		Timeout:    *timeout,
		CacheBytes: *cacheMB << 20,
		CacheDir:   *cacheDir,
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s (workers=%d queue=%d cache=%dMiB dir=%q)",
		*addr, *workers, *queue, *cacheMB, *cacheDir)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Print("signal received; draining")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	log.Print("drained; exiting")
}
