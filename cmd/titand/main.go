// Command titand runs the Titan compile service: a long-lived HTTP
// daemon that compiles C for the simulated Titan behind a bounded worker
// pool, deduplicates identical in-flight requests, and serves repeats
// from a content-addressed artifact cache (see internal/service).
//
// Usage:
//
//	titand [flags]
//
// Flags:
//
//	-addr host:port   listen address (default 127.0.0.1:8344)
//	-workers N        concurrent compiles (default GOMAXPROCS)
//	-queue N          queued compiles beyond the running ones before
//	                  requests are rejected with 503 (default 64)
//	-timeout D        per-request wait bound, e.g. 30s (default 60s)
//	-cache-mb N       in-memory artifact cache budget (default 64)
//	-cache-dir DIR    also persist artifacts under DIR so restarts
//	                  serve them warm (default off)
//	-rate N           per-client admitted compiles per second
//	                  (0: no rate limiting)
//	-burst N          per-client burst (default 2×rate)
//
// Cluster mode (see internal/cluster): a static peer list turns N
// daemons into one sharded compile service with a remote cache tier.
//
//	-self URL         this node's advertised base URL
//	                  (default http://<addr>)
//	-peers URLs       comma-separated peer base URLs
//	-peers-file PATH  file of peer URLs, one per line (# comments);
//	                  combined with -peers
//
// Endpoints: POST /compile, POST /compile/batch, POST+GET /catalogs,
// GET /metrics, GET /healthz (liveness), GET /readyz (readiness), and
// the peer cache tier (GET/PUT /cache/{key}, GET/PUT /schedules/{key},
// GET /catalogs/{id}). SIGINT/SIGTERM shut down gracefully: readiness
// goes false, the listener closes, in-flight compiles drain and publish
// to the cache, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8344", "listen address")
		workers   = flag.Int("workers", 0, "concurrent compiles (0: GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "queued compiles before 503")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-request wait bound")
		cacheMB   = flag.Int64("cache-mb", 64, "in-memory artifact cache budget (MiB)")
		cacheDir  = flag.String("cache-dir", "", "persist artifacts under this directory (off when empty)")
		drainFor  = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight compiles at shutdown")
		rate      = flag.Float64("rate", 0, "per-client admitted compiles per second (0: off)")
		burst     = flag.Int("burst", 0, "per-client burst (0: 2×rate)")
		self      = flag.String("self", "", "this node's advertised base URL (default http://<addr>)")
		peers     = flag.String("peers", "", "comma-separated peer base URLs")
		peersFile = flag.String("peers-file", "", "file of peer base URLs, one per line")
	)
	flag.Parse()
	log.SetPrefix("titand: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	peerList, err := resolvePeers(*peers, *peersFile)
	if err != nil {
		log.Fatal(err)
	}
	var clu *cluster.Cluster
	if len(peerList) > 0 {
		selfURL := *self
		if selfURL == "" {
			selfURL = "http://" + *addr
		}
		clu, err = cluster.New(cluster.Config{Self: selfURL, Peers: peerList})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("cluster mode: self=%s peers=%s", selfURL, strings.Join(peerList, ","))
	}

	srv, err := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		Timeout:    *timeout,
		CacheBytes: *cacheMB << 20,
		CacheDir:   *cacheDir,
		Cluster:    clu,
		RatePerSec: *rate,
		RateBurst:  *burst,
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s (workers=%d queue=%d cache=%dMiB dir=%q)",
		*addr, *workers, *queue, *cacheMB, *cacheDir)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Print("signal received; draining")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	clu.Close()
	log.Print("drained; exiting")
}

// resolvePeers merges the -peers flag with the -peers-file contents
// (one URL per line, blank lines and # comments skipped).
func resolvePeers(flagList, file string) ([]string, error) {
	var out []string
	for _, p := range strings.Split(flagList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if file != "" {
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			out = append(out, line)
		}
	}
	return out, nil
}
