// Command titancc compiles C for the simulated Titan.
//
// Usage:
//
//	titancc [flags] file.c
//
// Flags mirror the paper's compiler options:
//
//	-O0 / -O1        optimization level (default -O1)
//	-inline          enable inline expansion (§7)
//	-vector          enable vectorization (§5)
//	-parallel        enable do-parallel generation (§2)
//	-noalias         pointer parameters follow Fortran aliasing rules (§9)
//	-vl N            vector strip length (default 32, max titan.MaxVL)
//	-tune            autotune per-loop schedules: measure a bounded grid of
//	                 legal candidate schedules on the fast engine and compile
//	                 with the cycle-minimal set (each decision surfaces as a
//	                 sched-selected remark)
//	-catalog f.cat   attach a procedure catalog for inlining (repeatable)
//	-emit-catalog f  compile the unit into a catalog instead of code
//	-S               print Titan assembly
//	-il              print optimized IL
//	-run             simulate after compiling
//	-engine e        execution engine for -run: fast (default) or ref
//	-p N             processors for -run (1–4)
//	-entry name      entry function for -run (default main)
//	-stats           print a host throughput line after -run (wall time,
//	                 host instrs/sec, ns per simulated cycle, MFLOPS)
//	-cpuprofile f    write a CPU profile of the -run simulation to f
//	-memprofile f    write an allocation profile to f on exit
//
// Pipeline instrumentation (the pass manager's report and snapshot hook):
//
//	-time-passes     print per-pass wall time and IL statement deltas
//	-dump-after=p    print the IL snapshot after pass p (e.g. scalarize,
//	                 vectorize, strength; "lower" is the pre-pass IL)
//	-remarks         print the structured diagnostics the pipeline emitted:
//	                 per-loop vectorize/parallelize verdicts, inline
//	                 decisions, scalar-opt rewrites — one line each, sorted
//	                 by procedure and source position
//	-remarks=json    the same stream as a JSON array (the service's diag
//	                 wire form)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"time"

	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/il"
	"repro/internal/inline"
	"repro/internal/pass"
	"repro/internal/profiling"
	"repro/internal/schedule"
	"repro/internal/titan"
	"repro/internal/tune"
)

type catalogList []string

func (c *catalogList) String() string     { return fmt.Sprint(*c) }
func (c *catalogList) Set(s string) error { *c = append(*c, s); return nil }

// remarksFlag is the -remarks mode: "" (off), "text" (bare -remarks), or
// "json" (-remarks=json).
type remarksFlag struct{ mode string }

func (f *remarksFlag) String() string   { return f.mode }
func (f *remarksFlag) IsBoolFlag() bool { return true }

func (f *remarksFlag) Set(s string) error {
	switch s {
	case "true", "text":
		f.mode = "text"
	case "json":
		f.mode = "json"
	case "false":
		f.mode = ""
	default:
		return fmt.Errorf("unknown remarks format %q (want text or json)", s)
	}
	return nil
}

func main() {
	var (
		o0         = flag.Bool("O0", false, "disable optimization")
		doInline   = flag.Bool("inline", false, "enable inline expansion")
		doVector   = flag.Bool("vector", false, "enable vectorization")
		doPar      = flag.Bool("parallel", false, "enable parallelization")
		noAlias    = flag.Bool("noalias", false, "pointer params follow Fortran aliasing rules")
		listPar    = flag.Bool("list-parallel", false, "parallelize linked-list loops (asserts §10's independent-storage assumption)")
		vl         = flag.Int("vl", 0, "vector strip length")
		doTune     = flag.Bool("tune", false, "autotune per-loop schedules on the fast engine before compiling")
		emitCat    = flag.String("emit-catalog", "", "write a procedure catalog instead of compiling")
		asm        = flag.Bool("S", false, "print Titan assembly")
		dumpIL     = flag.Bool("il", false, "print optimized IL")
		runIt      = flag.Bool("run", false, "simulate after compiling")
		engine     = flag.String("engine", "fast", "execution engine for -run: fast or ref")
		procs      = flag.Int("p", 1, "processors for -run")
		entry      = flag.String("entry", "main", "entry function for -run")
		stats      = flag.Bool("stats", false, "print host simulation throughput after -run")
		cpuprofile = flag.String("cpuprofile", "", "write CPU profile of the -run simulation to file")
		memprofile = flag.String("memprofile", "", "write allocation profile to file")
		timePasses = flag.Bool("time-passes", false, "print per-pass wall time and IL statement deltas")
		dumpAfter  = flag.String("dump-after", "", "print the IL snapshot after the named pass")
		catalogs   catalogList
		remarks    remarksFlag
	)
	flag.Var(&catalogs, "catalog", "attach a procedure catalog (repeatable)")
	flag.Var(&remarks, "remarks", "print pipeline diagnostics (text, or -remarks=json)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: titancc [flags] file.c")
		flag.Usage()
		os.Exit(2)
	}
	if *engine != "fast" && *engine != "ref" {
		fatal(fmt.Errorf("unknown engine %q (want fast or ref)", *engine))
	}
	if *runIt {
		if err := titan.ValidateProcessors(*procs); err != nil {
			fatal(err)
		}
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *emitCat != "" {
		f, err := os.Create(*emitCat)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := driver.WriteCatalogFromSource(f, string(src)); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote catalog %s\n", *emitCat)
		return
	}

	if *vl != 0 {
		if err := schedule.ValidateVL(*vl); err != nil {
			fatal(err)
		}
	}
	opts := driver.Options{
		OptLevel:       1,
		Inline:         *doInline,
		Vectorize:      *doVector,
		Parallelize:    *doPar,
		ListParallel:   *listPar,
		NoAlias:        *noAlias,
		VL:             *vl,
		StrengthReduce: true,
	}
	if *o0 {
		opts.OptLevel = 0
		opts.StrengthReduce = false
	}
	for _, path := range catalogs {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		cat, err := inline.ReadCatalog(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		opts.Catalogs = append(opts.Catalogs, cat)
	}

	ctx := pass.NewContext()
	if *doTune {
		tres, err := tune.Tune(string(src), opts, tune.Config{Processors: *procs, Entry: *entry})
		if err != nil {
			fatal(err)
		}
		for _, d := range tres.Remarks() {
			ctx.Diags.Report(d)
		}
		ctx.Schedules = tres.Schedules
	}
	var dumped string
	if *dumpAfter != "" {
		ctx.Snapshot = func(name string, prog *il.Program) {
			if name == *dumpAfter {
				dumped = prog.String()
			}
		}
	}

	res, err := driver.CompileWith(string(src), opts, ctx)
	if err != nil {
		// Front-end failures land on the context as positioned error
		// diagnostics; with -remarks the structured form is shown too.
		printRemarks(remarks.mode, ctx.Diags.All())
		fatal(err)
	}
	printRemarks(remarks.mode, ctx.Diags.All())
	if *dumpAfter != "" {
		if dumped == "" {
			fatal(fmt.Errorf("no pass named %q ran (pipeline: lower %v)",
				*dumpAfter, pass.NewManager(opts).Passes()))
		}
		fmt.Printf("==== after %s ====\n%s", *dumpAfter, dumped)
	}
	if *timePasses {
		fmt.Print(res.Report.String())
	}
	if *dumpIL {
		fmt.Print(driver.DumpIL(res))
	}
	if *asm {
		fmt.Print(driver.Disassemble(res))
	}
	if *runIt {
		if _, ok := res.Machine.Funcs[*entry]; !ok {
			fatal(fmt.Errorf("entry function %q is not defined", *entry))
		}
		stopCPU, err := profiling.StartCPU(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		m := titan.NewMachine(res.Machine, *procs)
		start := time.Now()
		var r titan.Result
		if *engine == "ref" {
			r, err = m.RunReference(*entry)
		} else {
			r, err = m.Run(*entry)
		}
		wall := time.Since(start)
		stopCPU()
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Output)
		fmt.Println(driver.FormatResult(r, *procs))
		if *stats {
			fmt.Println(profiling.FormatStats(r, wall))
		}
		if err := profiling.WriteHeap(*memprofile); err != nil {
			fatal(err)
		}
	}
	if !*dumpIL && !*asm && !*runIt && !*timePasses && *dumpAfter == "" && remarks.mode == "" {
		fmt.Printf("compiled %s: %d procedures, %d inlined calls, %d vector stmts, %d parallel loops\n",
			flag.Arg(0), len(res.IL.Procs), res.InlinedCalls,
			res.VectorStats.VectorStmts, res.VectorStats.ParallelLoops+res.ParallelStats.LoopsParallelized)
	}
}

// printRemarks writes the diagnostic stream in the chosen -remarks mode;
// mode "" is off.
func printRemarks(mode string, ds []diag.Diagnostic) {
	switch mode {
	case "text":
		for _, d := range ds {
			fmt.Println(d.String())
		}
	case "json":
		out, err := json.MarshalIndent(ds, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "titancc:", err)
	os.Exit(1)
}
