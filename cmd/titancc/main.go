// Command titancc compiles C for the simulated Titan.
//
// Usage:
//
//	titancc [flags] file.c
//
// Flags mirror the paper's compiler options:
//
//	-O0 / -O1        optimization level (default -O1)
//	-inline          enable inline expansion (§7)
//	-vector          enable vectorization (§5)
//	-parallel        enable do-parallel generation (§2)
//	-noalias         pointer parameters follow Fortran aliasing rules (§9)
//	-vl N            vector strip length (default 32)
//	-catalog f.cat   attach a procedure catalog for inlining (repeatable)
//	-emit-catalog f  compile the unit into a catalog instead of code
//	-S               print Titan assembly
//	-il              print optimized IL
//	-run             simulate after compiling
//	-p N             processors for -run (1–4)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/driver"
	"repro/internal/inline"
	"repro/internal/titan"
)

type catalogList []string

func (c *catalogList) String() string     { return fmt.Sprint(*c) }
func (c *catalogList) Set(s string) error { *c = append(*c, s); return nil }

func main() {
	var (
		o0       = flag.Bool("O0", false, "disable optimization")
		doInline = flag.Bool("inline", false, "enable inline expansion")
		doVector = flag.Bool("vector", false, "enable vectorization")
		doPar    = flag.Bool("parallel", false, "enable parallelization")
		noAlias  = flag.Bool("noalias", false, "pointer params follow Fortran aliasing rules")
		listPar  = flag.Bool("list-parallel", false, "parallelize linked-list loops (asserts §10's independent-storage assumption)")
		vl       = flag.Int("vl", 0, "vector strip length")
		emitCat  = flag.String("emit-catalog", "", "write a procedure catalog instead of compiling")
		asm      = flag.Bool("S", false, "print Titan assembly")
		dumpIL   = flag.Bool("il", false, "print optimized IL")
		runIt    = flag.Bool("run", false, "simulate after compiling")
		procs    = flag.Int("p", 1, "processors for -run")
		catalogs catalogList
	)
	flag.Var(&catalogs, "catalog", "attach a procedure catalog (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: titancc [flags] file.c")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *emitCat != "" {
		f, err := os.Create(*emitCat)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := driver.WriteCatalogFromSource(f, string(src)); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote catalog %s\n", *emitCat)
		return
	}

	opts := driver.Options{
		OptLevel:       1,
		Inline:         *doInline,
		Vectorize:      *doVector,
		Parallelize:    *doPar,
		ListParallel:   *listPar,
		NoAlias:        *noAlias,
		VL:             *vl,
		StrengthReduce: true,
	}
	if *o0 {
		opts.OptLevel = 0
		opts.StrengthReduce = false
	}
	for _, path := range catalogs {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		cat, err := inline.ReadCatalog(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		opts.Catalogs = append(opts.Catalogs, cat)
	}

	res, err := driver.Compile(string(src), opts)
	if err != nil {
		fatal(err)
	}
	if *dumpIL {
		fmt.Print(driver.DumpIL(res))
	}
	if *asm {
		fmt.Print(driver.Disassemble(res))
	}
	if *runIt {
		m := titan.NewMachine(res.Machine, *procs)
		r, err := m.Run("main")
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Output)
		fmt.Println(driver.FormatResult(r, *procs))
	}
	if !*dumpIL && !*asm && !*runIt {
		fmt.Printf("compiled %s: %d procedures, %d inlined calls, %d vector stmts, %d parallel loops\n",
			flag.Arg(0), len(res.IL.Procs), res.InlinedCalls,
			res.VectorStats.VectorStmts, res.VectorStats.ParallelLoops+res.ParallelStats.LoopsParallelized)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "titancc:", err)
	os.Exit(1)
}
