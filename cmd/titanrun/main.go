// Command titanrun compiles a C file with the full optimization pipeline
// and runs it on the simulated Titan at several processor counts, printing
// a cycles/MFLOPS table — the quick way to reproduce the paper's speedup
// shapes.
//
// Usage:
//
//	titanrun [-configs] file.c
//
// With -configs, the program is compiled and measured under four
// configurations (scalar, +strength, +vector, +vector+parallel) the way
// the paper's evaluation contrasts them.
//
// Host-side measurement of the simulator itself:
//
//	-engine fast|ref  execution engine: the fast engine (default) or the
//	                  reference interpreter it is differenced against
//	-stats            print a host throughput line per run (wall time,
//	                  host instrs/sec, ns per simulated cycle, MFLOPS)
//	-cpuprofile f     write a CPU profile of the simulation(s) to f
//	-memprofile f     write an allocation profile to f on exit
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/driver"
	"repro/internal/profiling"
	"repro/internal/titan"
)

func main() {
	configs := flag.Bool("configs", false, "sweep optimization configurations")
	procs := flag.Int("p", 2, "max processors for parallel configs")
	entry := flag.String("entry", "main", "entry function to simulate")
	engine := flag.String("engine", "fast", "execution engine: fast or ref")
	stats := flag.Bool("stats", false, "print host simulation throughput per run")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write allocation profile to file")
	flag.Parse()
	if *engine != "fast" && *engine != "ref" {
		fatal(fmt.Errorf("unknown engine %q (want fast or ref)", *engine))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: titanrun [-configs] file.c")
		os.Exit(2)
	}
	if err := titan.ValidateProcessors(*procs); err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	type cfg struct {
		name  string
		opts  driver.Options
		procs int
	}
	var cfgs []cfg
	if *configs {
		cfgs = []cfg{
			{"scalar -O1", driver.Options{OptLevel: 1}, 1},
			{"+strength (§6)", driver.ScalarOptions(), 1},
			{"+vector (§5)", driver.Options{OptLevel: 1, Inline: true, Vectorize: true, StrengthReduce: true}, 1},
			{fmt.Sprintf("+parallel ×%d (§2)", *procs), driver.FullOptions(), *procs},
		}
	} else {
		cfgs = []cfg{{"full", driver.FullOptions(), *procs}}
	}

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "config\tprocs\tcycles\tinstrs\tflops\tMFLOPS\tspeedup")
	var base int64
	for _, c := range cfgs {
		res, err := driver.Compile(string(src), c.opts)
		if err != nil {
			fatal(err)
		}
		if _, ok := res.Machine.Funcs[*entry]; !ok {
			fatal(fmt.Errorf("entry function %q is not defined", *entry))
		}
		m := titan.NewMachine(res.Machine, c.procs)
		start := time.Now()
		var r titan.Result
		if *engine == "ref" {
			r, err = m.RunReference(*entry)
		} else {
			r, err = m.Run(*entry)
		}
		wall := time.Since(start)
		if err != nil {
			fatal(err)
		}
		if r.Output != "" {
			fmt.Print(r.Output)
		}
		if *stats {
			fmt.Println(profiling.FormatStats(r, wall))
		}
		if base == 0 {
			base = r.Cycles
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f\t%.2fx\n",
			c.name, c.procs, r.Cycles, r.Instrs, r.FlopCount, r.MFLOPS(),
			float64(base)/float64(r.Cycles))
	}
	w.Flush()
	stopCPU()
	if err := profiling.WriteHeap(*memprofile); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "titanrun:", err)
	os.Exit(1)
}
